// resched_tool: command-line frontend for the whole library.
//
//   # schedule an instance file (native or SWF) and print the result
//   resched_tool schedule --input=cluster.inst --algorithm=lsrc-lpt
//
//   # compare every registered scheduler on one instance
//   resched_tool compare --input=cluster.swf
//
//   # inspect an instance: classification, bounds, applicable guarantee
//   resched_tool info --input=cluster.inst
//
//   # hunt for scheduling anomalies under a given algorithm
//   resched_tool anomalies --input=cluster.inst --algorithm=lsrc
//
//   # print the registry: every scheduler, its description and capabilities
//   resched_tool list-schedulers
//
//   # check scenario programs / SWF traces without running a campaign
//   resched_tool scenario validate tests/data/*.scn
//   resched_tool trace info trace.swf
//
// Input format is auto-detected (native "# resched instance" vs SWF).
#include <algorithm>
#include <fstream>
#include <utility>
#include <iostream>
#include <sstream>
#include <vector>

#include "resched.hpp"

namespace {

using namespace resched;

Instance load_any(const std::string& path) {
  std::ifstream probe(path);
  RESCHED_REQUIRE_MSG(probe.good(), "cannot open: " + path);
  std::string first_line;
  std::getline(probe, first_line);
  probe.seekg(0);
  if (starts_with(trim(first_line), ";")) return read_swf(probe);
  return load_instance(probe);
}

int cmd_info(const Instance& instance) {
  std::cout << "m = " << instance.m() << ", n = " << instance.n()
            << " jobs, n' = " << instance.n_reservations()
            << " reservations\n";
  std::cout << "total work W = " << instance.total_work()
            << ", p_max = " << instance.p_max()
            << ", q_max = " << instance.q_max() << "\n";
  std::cout << "release times: "
            << (instance.has_release_times() ? "yes (online)" : "no (offline)")
            << "\n";
  std::cout << "unavailability non-increasing: "
            << (has_non_increasing_unavailability(instance) ? "yes" : "no")
            << "\n";
  if (const auto alpha = best_alpha(instance); alpha.has_value()) {
    std::cout << "alpha-restricted with alpha = " << alpha->to_string()
              << " (LSRC guarantee 2/alpha = "
              << alpha_upper_bound(*alpha).to_string() << ")\n";
  } else {
    std::cout << "not alpha-restricted for any alpha (Theorem 1 territory)\n";
  }
  std::cout << "certified lower bound on C*: "
            << makespan_lower_bound(instance) << "\n";
  return 0;
}

int cmd_schedule(const Instance& instance, const std::string& algorithm,
                 const std::string& out_csv, const std::string& out_svg,
                 bool show_gantt) {
  ScheduleOutcome outcome = make_scheduler(algorithm)->schedule(instance);
  if (!outcome.ok()) {
    std::cerr << "instance outside the domain of '" << algorithm
              << "' (" << to_string(outcome.error().reason)
              << "): " << outcome.error().message << "\n";
    return 1;
  }
  const Schedule schedule = std::move(outcome).value();
  const ValidationResult valid = schedule.validate(instance);
  RESCHED_CHECK_MSG(valid.ok, "scheduler produced infeasible schedule: " +
                                  valid.error);
  const GuaranteeReport report = check_guarantee(instance, schedule);
  std::cout << "algorithm: " << algorithm << "\n";
  std::cout << "makespan: " << schedule.makespan(instance) << "\n";
  std::cout << "lower bound: " << report.reference << "\n";
  std::cout << "guarantee: " << report.guarantee << " -> "
            << to_string(report.compliance) << "\n";
  if (show_gantt) std::cout << "\n" << ascii_gantt(instance, schedule);
  if (!out_csv.empty()) {
    std::ofstream os(out_csv);
    save_schedule_csv(instance, schedule, os);
    std::cout << "schedule CSV written to " << out_csv << "\n";
  }
  if (!out_svg.empty()) {
    std::ofstream os(out_svg);
    os << svg_gantt(instance, schedule);
    std::cout << "SVG written to " << out_svg << "\n";
  }
  return 0;
}

int cmd_compare(const Instance& instance) {
  const Time lb = makespan_lower_bound(instance);
  Table table({"algorithm", "C_max", "ratio vs LB", "utilization",
               "mean wait", "compliance"});
  for (const auto& name : registered_schedulers()) {
    // Typed outcome instead of throw-and-catch: a DomainError row names its
    // reason; a genuine precondition violation still aborts the command.
    ScheduleOutcome outcome = make_scheduler(name)->schedule(instance);
    if (!outcome.ok()) {
      table.add(name, "-", "-", "-", "-",
                "outside domain (" + to_string(outcome.error().reason) + ")");
      continue;
    }
    const Schedule schedule = std::move(outcome).value();
    const ScheduleMetrics metrics = compute_metrics(instance, schedule);
    const GuaranteeReport report = check_guarantee(instance, schedule);
    table.add(name, metrics.makespan,
              format_double(static_cast<double>(metrics.makespan) /
                                static_cast<double>(std::max<Time>(1, lb)),
                            4),
              format_double(metrics.utilization, 3),
              format_double(metrics.mean_wait, 1),
              to_string(report.compliance));
  }
  table.print(std::cout);
  return 0;
}

int cmd_list_schedulers() {
  Table table({"scheduler", "release times", "reservations", "deterministic",
               "description"});
  for (const SchedulerInfo& info : registered_scheduler_info())
    table.add(info.name, info.capabilities.release_times ? "yes" : "no",
              info.capabilities.reservations ? "yes" : "no",
              info.capabilities.deterministic ? "yes" : "no",
              info.description);
  table.print(std::cout);
  return 0;
}

int cmd_anomalies(const Instance& instance, const std::string& algorithm) {
  const auto scheduler = make_scheduler(algorithm);
  const AnomalyScan scan = find_anomalies(instance, *scheduler);
  std::cout << "baseline C_max(" << algorithm << ") = " << scan.baseline
            << "\n";
  if (!scan.any()) {
    std::cout << "no anomalies found (every tested improvement helped or "
                 "was neutral)\n";
    return 0;
  }
  Table table({"kind", "job", "new p", "C before", "C after"});
  for (const Anomaly& anomaly : scan.anomalies)
    table.add(to_string(anomaly.kind),
              anomaly.job >= 0 ? std::to_string(anomaly.job) : "-",
              anomaly.kind == AnomalyKind::kShorterDuration
                  ? std::to_string(anomaly.new_duration)
                  : "-",
              anomaly.makespan_before, anomaly.makespan_after);
  table.print(std::cout);
  return 0;
}

// `scenario validate FILE...`: parse + structurally validate each program,
// compile it when self-contained, and report errors with their position.
// Exit code 1 when any file is malformed or unreadable.
int cmd_scenario_validate(const std::vector<std::string>& files) {
  RESCHED_REQUIRE_MSG(!files.empty(),
                      "usage: resched_tool scenario validate FILE...");
  int failures = 0;
  for (const std::string& path : files) {
    try {
      const ScenarioProgram program = load_scn(path);
      std::cout << path << ": ok -- scenario '" << program.name << "', "
                << program.steps.size() << " step(s)";
      if (program.repeat != 1) std::cout << " x " << program.repeat;
      const bool needs_reference = std::any_of(
          program.steps.begin(), program.steps.end(), [](const ScenarioStep& s) {
            return s.kind == ScenarioStepKind::kWaitToCross;
          });
      if (needs_reference) {
        std::cout << " (wait_to_cross: compiles against a reference curve)\n";
      } else {
        const CompiledScenario compiled = compile_scenario(program);
        std::cout << ", horizon " << compiled.horizon << ", level range ["
                  << compiled.curve.min_value() << ", "
                  << compiled.curve.max_value() << "]\n";
      }
    } catch (const ScnParseError& error) {
      std::cerr << path << ":" << error.what() << "\n";
      ++failures;
    } catch (const std::exception& error) {
      std::cerr << path << ": error: " << error.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// `trace info FILE...`: tolerant SWF summary -- machine size, parsed and
// skipped record counts (by reason), clamps, header directives. Exit code 1
// when a file is unreadable or yields no jobs at all.
int cmd_trace_info(const std::vector<std::string>& files) {
  RESCHED_REQUIRE_MSG(!files.empty(), "usage: resched_tool trace info FILE...");
  int failures = 0;
  for (const std::string& path : files) {
    try {
      const SwfTrace trace = load_swf_trace(path);
      std::cout << path << ": MaxProcs " << trace.max_procs << ", "
                << trace.skip_summary();
      if (trace.clamped_procs > 0)
        std::cout << ", clamped-procs " << trace.clamped_procs;
      if (trace.clamped_times > 0)
        std::cout << ", clamped-times " << trace.clamped_times;
      std::cout << ", " << trace.directives.size() << " header directive(s)\n";
      if (trace.parsed == 0) {
        std::cerr << path << ": error: no schedulable job records\n";
        ++failures;
      }
    } catch (const std::exception& error) {
      std::cerr << path << ": error: " << error.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("resched_tool",
                "schedule / compare / info / anomalies on instance files");
  cli.add_option("input", "instance file (native or SWF; auto-detected)", "");
  cli.add_option("algorithm", "scheduler name (see `compare` for the list)",
                 "lsrc");
  cli.add_option("out-csv", "write the schedule as CSV", "");
  cli.add_option("out-svg", "write an SVG Gantt chart", "");
  cli.add_flag("no-gantt", "suppress the ASCII Gantt chart");
  if (!cli.parse(argc, argv)) return 0;

  try {
    RESCHED_REQUIRE_MSG(!cli.positional().empty(),
                        "usage: resched_tool <schedule|compare|info|"
                        "anomalies|list-schedulers> --input=FILE | "
                        "resched_tool <scenario validate|trace info> FILE...");
    const std::string command = cli.positional().front();
    if (command == "list-schedulers") return cmd_list_schedulers();
    if (command == "scenario" || command == "trace") {
      const auto& positional = cli.positional();
      RESCHED_REQUIRE_MSG(
          positional.size() >= 2 &&
              positional[1] == (command == "scenario" ? "validate" : "info"),
          command == "scenario" ? "usage: resched_tool scenario validate FILE..."
                                : "usage: resched_tool trace info FILE...");
      const std::vector<std::string> files(positional.begin() + 2,
                                           positional.end());
      return command == "scenario" ? cmd_scenario_validate(files)
                                   : cmd_trace_info(files);
    }
    const std::string input = cli.get_string("input");
    RESCHED_REQUIRE_MSG(!input.empty(), "--input is required");
    const Instance instance = load_any(input);

    if (command == "info") return cmd_info(instance);
    if (command == "schedule")
      return cmd_schedule(instance, cli.get_string("algorithm"),
                          cli.get_string("out-csv"), cli.get_string("out-svg"),
                          !cli.get_flag("no-gantt"));
    if (command == "compare") return cmd_compare(instance);
    if (command == "anomalies")
      return cmd_anomalies(instance, cli.get_string("algorithm"));
    std::cerr << "unknown command '" << command << "'\n" << cli.usage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
