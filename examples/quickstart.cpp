// Quickstart: the resched API in ~60 lines.
//
//   1. describe a cluster, jobs and an advance reservation,
//   2. schedule with LSRC (the paper's list algorithm),
//   3. validate, inspect the guarantee, and draw the Gantt chart.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "algorithms/lsrc.hpp"
#include "bounds/checker.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/gantt.hpp"
#include "core/instance.hpp"

int main() {
  using namespace resched;

  // A cluster with 8 processors. Three rigid jobs: (processors, duration).
  // One advance reservation takes 4 processors during [6, 12).
  const Instance instance(
      8,
      {
          Job{0, 4, 5, 0, "simulation"},
          Job{1, 2, 9, 0, "render"},
          Job{2, 6, 3, 0, "analysis"},
      },
      {
          Reservation{0, 4, 6, 6, "demo-slot"},
      });

  // LSRC = list scheduling with resource constraints; the default list is
  // submission order. Try ListOrder::kLpt for the paper's conjectured
  // improvement.
  const Schedule schedule = LsrcScheduler().schedule(instance).value();

  // Always validate: the checker recomputes feasibility from scratch.
  const ValidationResult valid = schedule.validate(instance);
  if (!valid.ok) {
    std::cerr << "infeasible schedule: " << valid.error << "\n";
    return 1;
  }

  std::cout << "makespan: " << schedule.makespan(instance) << "\n";
  std::cout << "certified lower bound on OPT: "
            << makespan_lower_bound(instance) << "\n";

  // Which of the paper's guarantees covers this instance, and does the
  // schedule comply?
  const GuaranteeReport report = check_guarantee(instance, schedule);
  std::cout << "guarantee: " << report.guarantee << "\n";
  std::cout << "compliance: " << to_string(report.compliance) << " ("
            << report.detail << ")\n\n";

  std::cout << ascii_gantt(instance, schedule);
  return 0;
}
