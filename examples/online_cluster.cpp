// Online cluster operation (paper section 2.1).
//
// Jobs arrive over time (Poisson stream); periodic maintenance windows
// reserve part of the machine. Two ways to run the cluster:
//   * reactive schedulers (FCFS / conservative / EASY / LSRC) that handle
//     releases natively, and
//   * the Shmoys-Wein-Williamson doubling-batch wrapper around an offline
//     algorithm, whose makespan is provably <= 2 rho times optimal.
// The example simulates both, prints the comparison and dumps the execution
// trace of the winner.
//
// Run: ./build/examples/online_cluster [--n=80] [--m=32] [--seed=7]
//      [--interarrival=3.0] [--trace=trace.csv]
#include <fstream>
#include <iostream>

#include "algorithms/online_batch.hpp"
#include "algorithms/scheduler.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "sim/cluster_sim.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("online_cluster",
                "online arrivals + maintenance reservations, reactive vs "
                "batch-doubling scheduling");
  cli.add_option("n", "number of arriving jobs", "80");
  cli.add_option("m", "processors", "32");
  cli.add_option("seed", "workload seed", "7");
  cli.add_option("interarrival", "mean inter-arrival time", "3.0");
  cli.add_option("trace", "write best schedule's event trace CSV here", "");
  if (!cli.parse(argc, argv)) return 0;

  WorkloadConfig config;
  config.n = static_cast<std::size_t>(cli.get_int("n"));
  config.m = cli.get_int("m");
  config.alpha = Rational(1, 2);
  config.p_max = 30;
  config.mean_interarrival = cli.get_double("interarrival");
  Instance instance =
      random_workload(config, static_cast<std::uint64_t>(cli.get_int("seed")));
  // Nightly maintenance: a quarter of the machine, every 100 ticks.
  instance = with_periodic_maintenance(instance, config.m / 4, 90, 100, 10, 5);

  const Time lb = makespan_lower_bound(instance);
  std::cout << "Online stream: " << instance.n() << " jobs, m = "
            << instance.m() << ", " << instance.n_reservations()
            << " maintenance windows; certified offline LB = " << lb
            << "\n\n";

  Table table({"scheduler", "C_max", "ratio vs LB", "mean wait",
               "mean bounded slowdown"});
  std::string best_name;
  Time best_makespan = kTimeInfinity;
  Schedule best_schedule(instance.n());

  auto evaluate = [&](const std::string& label, const Schedule& schedule) {
    const ScheduleMetrics metrics = compute_metrics(instance, schedule);
    table.add(label, metrics.makespan,
              format_double(static_cast<double>(metrics.makespan) /
                                static_cast<double>(lb),
                            3),
              format_double(metrics.mean_wait, 1),
              format_double(metrics.mean_bounded_slowdown, 2));
    if (metrics.makespan < best_makespan) {
      best_makespan = metrics.makespan;
      best_name = label;
      best_schedule = schedule;
    }
  };

  for (const char* name : {"fcfs", "conservative", "easy", "lsrc"})
    evaluate(name, make_scheduler(name)->schedule(instance).value());
  for (const char* base : {"lsrc", "conservative"}) {
    OnlineBatchScheduler wrapper(make_scheduler(base));
    std::vector<BatchInfo> batches;
    const Schedule schedule =
        wrapper.schedule_with_batches(instance, batches).value();
    evaluate(wrapper.name() + " [" + std::to_string(batches.size()) +
                 " batches]",
             schedule);
  }
  table.print(std::cout);
  std::cout << "\nbest: " << best_name << " at C_max = " << best_makespan
            << "\n";

  const std::string trace_path = cli.get_string("trace");
  if (!trace_path.empty()) {
    const SimulationResult sim = simulate_cluster(instance, best_schedule);
    std::ofstream os(trace_path);
    write_trace_csv(sim.trace, os);
    std::cout << "trace written to " << trace_path << " ("
              << sim.trace.size() << " events)\n";
  }
  return 0;
}
