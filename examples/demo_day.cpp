// Demo-day scenario (paper section 1.2, motivation 2).
//
// A user books the whole visualisation partition for a live demo at a fixed
// meeting time. The cluster must drain onto the remaining processors around
// the slot. This example renders the four schedulers' Gantt charts around
// the demo reservation and prints the fairness/utilisation trade-off table
// (strict FCFS idles half the machine; LSRC fills every hole but starves
// wide jobs).
//
// Run: ./build/examples/demo_day [--svg-prefix=demo_day_]
#include <fstream>
#include <iostream>

#include "algorithms/scheduler.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/gantt.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scn_format.hpp"
#include "sim/cluster_sim.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

// The demo slot as a scenario program -- byte-for-byte the committed
// tests/data/demo_day.scn (tests/test_scenario.cpp pins the equivalence,
// and that compiling it reproduces the original hand-built reservation
// exactly): the 12-processor machine drops to 4 during [20, 30).
constexpr const char* kDemoDayScn =
    "scenario demo_day\n"
    "initial 12\n"
    "  soak_at 12 20\n"
    "  jump_to 4\n"
    "  soak_at 4 10\n"
    "  jump_to 12\n"
    "end\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("demo_day",
                "schedule a mixed queue around a demo-slot reservation");
  cli.add_option("svg-prefix",
                 "write one SVG per scheduler with this filename prefix", "");
  if (!cli.parse(argc, argv)) return 0;

  // 12-processor cluster; the demo-day availability program books 8
  // processors during [20, 30). The queue mixes narrow-long and wide-short
  // jobs; ids are submission order.
  const ScenarioProgram program = parse_scn(kDemoDayScn);
  Instance instance = scenario_instance(
      12,
      {
          Job{0, 4, 18, 0, "cfd"},
          Job{1, 2, 30, 0, "md-long"},
          Job{2, 8, 6, 0, "fft-wide"},
          Job{3, 1, 12, 0, "post"},
          Job{4, 6, 8, 0, "train"},
          Job{5, 2, 10, 0, "stats"},
          Job{6, 4, 4, 0, "viz-prep"},
          Job{7, 3, 14, 0, "assim"},
      },
      compile_scenario(program));
  // One rectangle: 8 processors over [20, 30). Keep the demo's marquee name.
  {
    std::vector<Reservation> reservations = instance.reservations();
    RESCHED_CHECK_MSG(reservations.size() == 1,
                      "demo_day program should compile to one reservation");
    reservations[0].name = "DEMO";
    instance = Instance(instance.m(), instance.jobs(),
                        std::move(reservations));
  }

  std::cout << "Demo day: 8 of 12 processors reserved during [20, 30); "
            << instance.n() << " jobs queued.\n";
  std::cout << "Certified lower bound on OPT: "
            << makespan_lower_bound(instance) << "\n\n";

  Table table({"algorithm", "C_max", "utilization", "mean wait", "max wait",
               "peak busy"});
  for (const char* name : {"fcfs", "conservative", "easy", "lsrc",
                           "lsrc-lpt"}) {
    const Schedule schedule = make_scheduler(name)->schedule(instance).value();
    const SimulationResult sim = simulate_cluster(instance, schedule);
    table.add(name, sim.metrics.makespan,
              format_double(sim.metrics.utilization, 3),
              format_double(sim.metrics.mean_wait, 1), sim.metrics.max_wait,
              sim.peak_busy);

    std::cout << "--- " << name << " ---\n";
    GanttOptions options;
    options.width = 72;
    options.show_legend = name == std::string("fcfs");
    std::cout << ascii_gantt(instance, schedule, options) << "\n";

    const std::string prefix = cli.get_string("svg-prefix");
    if (!prefix.empty()) {
      std::ofstream os(prefix + name + ".svg");
      os << svg_gantt(instance, schedule);
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the charts: FCFS leaves the left of the demo block "
               "idle whenever the\nqueue head is too wide; LSRC backfills "
               "everything but pushes wide jobs behind\nthe demo slot.\n";
  return 0;
}
