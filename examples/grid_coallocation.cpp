// Grid co-allocation scenario (paper section 1.2, motivation 1).
//
// A user runs a multi-site application: a cross-site slot must be reserved
// in advance so the application starts simultaneously everywhere. On *this*
// site, that reservation removes a block of processors from the batch
// scheduler's control. This example quantifies the impact on the local
// batch queue: we schedule the same workload with every algorithm, with and
// without the co-allocation reservation, and report makespans, waits and
// the alpha-guarantee that the paper attaches to the reserved case.
//
// Run: ./build/examples/grid_coallocation [--m=64] [--n=60] [--seed=1]
//      [--resa-frac=0.5] [--svg=coalloc.svg]
#include <fstream>
#include <iostream>

#include "algorithms/scheduler.hpp"
#include "bounds/checker.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/availability.hpp"
#include "core/gantt.hpp"
#include "generators/workload.hpp"
#include "sim/metrics.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("grid_coallocation",
                "impact of a cross-site co-allocation reservation on the "
                "local batch queue");
  cli.add_option("m", "processors on the local site", "64");
  cli.add_option("n", "jobs in the local queue", "60");
  cli.add_option("seed", "workload seed", "1");
  cli.add_option("resa-frac",
                 "fraction of the site reserved for the co-allocation",
                 "0.5");
  cli.add_option("svg", "write an SVG Gantt of the LSRC schedule here", "");
  if (!cli.parse(argc, argv)) return 0;

  const ProcCount m = cli.get_int("m");
  const double frac = cli.get_double("resa-frac");
  if (frac <= 0.0 || frac >= 1.0) {
    std::cerr << "--resa-frac must lie in (0, 1)\n";
    return 1;
  }

  WorkloadConfig config;
  config.n = static_cast<std::size_t>(cli.get_int("n"));
  config.m = m;
  config.p_max = 40;
  // Keep jobs narrow enough that the alpha guarantee applies after the
  // reservation: q <= (1 - frac) m.
  config.alpha = Rational(static_cast<std::int64_t>((1.0 - frac) * 100), 100);
  const Instance open_site =
      random_workload(config, static_cast<std::uint64_t>(cli.get_int("seed")));

  // The co-allocation slot: frac*m processors for 30 ticks, starting at 40.
  const auto reserved_q = static_cast<ProcCount>(
      static_cast<double>(m) * frac);
  const Instance reserved_site(
      m, open_site.jobs(),
      {Reservation{0, reserved_q, 30, 40, "co-allocation"}});

  std::cout << "Local site: m = " << m << ", " << open_site.n()
            << " queued jobs; co-allocation reserves " << reserved_q
            << " processors during [40, 70).\n";
  if (const auto alpha = best_alpha(reserved_site); alpha.has_value()) {
    std::cout << "Instance is alpha-restricted with alpha = "
              << alpha->to_string()
              << "  =>  LSRC guarantee 2/alpha = "
              << (Rational(2) / *alpha).to_string() << " (Prop. 3)\n\n";
  }

  Table table({"algorithm", "C_max (open)", "C_max (reserved)", "delta %",
               "mean wait (reserved)", "compliance"});
  for (const auto& name : registered_schedulers()) {
    const auto scheduler = make_scheduler(name);
    // Capability filtering: the comparison needs both sites in-domain.
    if (!scheduler->supports(reserved_site) || !scheduler->supports(open_site))
      continue;
    const Schedule open_schedule = scheduler->schedule(open_site).value();
    const Schedule reserved_schedule = scheduler->schedule(reserved_site).value();
    const ScheduleMetrics metrics =
        compute_metrics(reserved_site, reserved_schedule);
    const GuaranteeReport report =
        check_guarantee(reserved_site, reserved_schedule);
    const double open_cmax =
        static_cast<double>(open_schedule.makespan(open_site));
    const double res_cmax = static_cast<double>(metrics.makespan);
    table.add(name, open_schedule.makespan(open_site), metrics.makespan,
              format_double(100.0 * (res_cmax - open_cmax) / open_cmax, 1),
              format_double(metrics.mean_wait, 1),
              to_string(report.compliance));
  }
  table.print(std::cout);

  const std::string svg_path = cli.get_string("svg");
  if (!svg_path.empty()) {
    const Schedule schedule = make_scheduler("lsrc")->schedule(reserved_site).value();
    std::ofstream os(svg_path);
    os << svg_gantt(reserved_site, schedule);
    std::cout << "\nSVG Gantt written to " << svg_path << "\n";
  }
  return 0;
}
