// Scenario x scheduler survival matrix driver.
//
// Sweeps availability scenario programs against the scheduler registry and
// reports which of the paper's guarantees survive which scenario: every
// (scenario, scheduler) cell runs a guarantee-checking campaign and is
// classified held / VIOLATED / out-of-domain / inconclusive.
//
//   # the six stock scenarios x the full registry
//   ./build/examples/scenarios
//
//   # two cells, CSV export (the CI smoke invocation)
//   ./build/examples/scenarios --m=16 --instances=2 \
//       --schedulers=fcfs,lsrc --scenarios=soak,ramp --csv=matrix.csv
//
//   # committed .scn programs and a real SWF trace as extra rows
//   ./build/examples/scenarios --scn=tests/data/maintenance.scn \
//       --trace=tests/data/tiny.swf
#include <fstream>
#include <iostream>

#include "resched.hpp"

namespace {

using namespace resched;

[[nodiscard]] bool selected(const std::string& name,
                            const std::vector<std::string>& filter) {
  if (filter.empty()) return true;
  for (const std::string& want : filter)
    if (want == name) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("scenarios",
                "scenario x scheduler guarantee-survival matrix");
  cli.add_option("m", "processors for the stock scenarios", "32");
  cli.add_option("instances", "instances per matrix cell", "8");
  cli.add_option("seed", "master seed", "1");
  cli.add_option("threads", "worker threads per campaign (0 = all cores)",
                 "0");
  cli.add_option("schedulers",
                 "comma-separated scheduler names (empty = full registry)",
                 "");
  cli.add_option("scenarios",
                 "comma-separated stock-scenario names to keep (empty = all "
                 "six)",
                 "");
  cli.add_option("scn",
                 "comma-separated .scn files to add as extra scenarios "
                 "(random workload)",
                 "");
  cli.add_option("trace",
                 "SWF trace file to add as a fixed-workload scenario", "");
  cli.add_option("csv", "write the long-form per-cell report here", "");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const ProcCount m = cli.get_int("m");
    const std::string scenario_filter = cli.get_string("scenarios");
    const std::vector<std::string> keep =
        scenario_filter.empty() ? std::vector<std::string>{}
                                : split(scenario_filter, ',');

    std::vector<ScenarioSpec> specs;
    for (ScenarioSpec& spec : stock_scenarios(m))
      if (selected(spec.program.name, keep)) specs.push_back(std::move(spec));

    const std::string scn_files = cli.get_string("scn");
    if (!scn_files.empty()) {
      for (const std::string& path : split(scn_files, ',')) {
        ScenarioSpec spec;
        spec.program = load_scn(path);
        spec.m = m;
        specs.push_back(std::move(spec));
      }
    }

    const std::string trace_path = cli.get_string("trace");
    if (!trace_path.empty()) {
      const SwfTrace trace = load_swf_trace(trace_path);
      RESCHED_REQUIRE_MSG(trace.parsed > 0,
                          "trace has no schedulable job records");
      std::cout << "trace " << trace_path << ": " << trace.skip_summary()
                << "\n";
      specs.push_back(trace_scenario(trace));
    }
    RESCHED_REQUIRE_MSG(!specs.empty(), "no scenarios selected");

    ScenarioMatrixConfig config;
    config.instances = static_cast<std::size_t>(cli.get_int("instances"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.threads = static_cast<std::size_t>(cli.get_int("threads"));
    const std::string schedulers = cli.get_string("schedulers");
    if (!schedulers.empty()) config.schedulers = split(schedulers, ',');

    const ScenarioMatrixResult result = run_scenario_matrix(specs, config);
    std::cout << "scenario matrix: " << result.scenarios.size()
              << " scenarios x " << result.schedulers.size()
              << " schedulers, " << result.instances
              << " instances per cell, seed " << config.seed << "\n\n";
    result.survival_table().print(std::cout);

    // Guarantee tallies for the interesting (non-held) cells.
    for (std::size_t row = 0; row < result.scenarios.size(); ++row) {
      for (std::size_t col = 0; col < result.schedulers.size(); ++col) {
        const ScenarioCell& cell = result.cell(row, col);
        if (cell.verdict == CellVerdict::kHeld) continue;
        std::cout << cell.scenario << " x " << cell.campaign.scheduler << ": "
                  << to_string(cell.verdict) << " (proven "
                  << cell.campaign.guarantee_proven << ", violated "
                  << cell.campaign.guarantee_violated << ", inconclusive "
                  << cell.campaign.guarantee_inconclusive << ", no-guarantee "
                  << cell.campaign.guarantee_none << ", skipped "
                  << cell.campaign.skipped << ")\n";
      }
    }

    const std::string csv_path = cli.get_string("csv");
    if (!csv_path.empty()) {
      std::ofstream os(csv_path);
      RESCHED_REQUIRE_MSG(os.good(), "cannot write: " + csv_path);
      os << result.to_csv();
      std::cout << "\nper-cell CSV written to " << csv_path << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
