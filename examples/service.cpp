// Open-loop service harness: schedulers as a resident cluster service.
//
// Sweeps the offered arrival rate from --step-size up to --step-stop (jobs
// per kilotick, mutated-client style) for each requested scheduler, running
// warmup/measure/cooldown phases per step on the sim/des kernel, and prints
// one row per rate step: decision-latency percentiles, wait-time
// percentiles, queue depth, sustained throughput, and whether the step
// saturated. The detected saturation knee -- the first rate whose queue
// growth diverges -- closes each scheduler's section.
//
// Decision accounting: `decisions` counts every scheduler invocation across
// all three phases, while the dec_ns_* percentiles sample only the
// `decisions_measured` invocations that fell inside the open measure window
// (the two were conflated before the counters were split). Schedulers that
// advertise incremental_replan plan on the persistent absolute-time profile
// (decisions_incremental) unless --no-incremental forces the per-decision
// scratch rebuild (decisions_scratch); --verify-incremental runs both per
// decision and cross-checks them. --churn enables the deterministic churn
// stream (cancellations, availability drops, window moves) at the given
// events-per-kilotick rate.
//
// With a fixed --seed every simulated quantity (arrivals, waits, queue
// depths, knee) is bit-identical across runs and across schedulers at the
// same rate step. Wall-clock decision latency is real measured time and
// therefore run-to-run noisy; pass --stable to blank those columns when
// diffing output (goldens, CI).
//
// Run: ./build/examples/service --schedulers=easy,conservative
//      [--m=64] [--step-size=20] [--step-stop=200] [--seed=42]
//      [--warmup=100] [--measure=500] [--cooldown=100] [--window=128]
//      [--no-incremental] [--verify-incremental] [--churn=0]
//      [--machine-readable] [--stable]
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "sim/service_sim.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace resched;

constexpr double kQuantiles[] = {0.50, 0.99, 0.999};

// "p50/p99/p999" cells for one recorder; "-" when nothing was recorded or
// the column is blanked for stable output.
std::vector<std::string> quantile_cells(const LatencyRecorder& recorder,
                                        bool blank) {
  if (blank || recorder.count() == 0) return {"-", "-", "-"};
  std::vector<std::string> cells;
  for (const std::int64_t v : recorder.percentiles(kQuantiles))
    cells.push_back(std::to_string(v));
  return cells;
}

WidthDistribution parse_width(const std::string& name) {
  if (name == "pow2") return WidthDistribution::kPowersOfTwo;
  if (name == "uniform") return WidthDistribution::kUniform;
  if (name == "narrow") return WidthDistribution::kMostlyNarrow;
  throw std::invalid_argument("unknown width distribution: " + name +
                              " (expected pow2|uniform|narrow)");
}

Rational parse_alpha(const std::string& text) {
  const std::vector<std::string> parts = split(text, '/');
  if (parts.size() == 1) return Rational(std::stoll(parts[0]));
  if (parts.size() == 2)
    return Rational(std::stoll(parts[0]), std::stoll(parts[1]));
  throw std::invalid_argument("alpha must be an integer or a fraction p/q");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("service",
                "open-loop saturation sweep: schedulers as a resident "
                "cluster service");
  cli.add_option("schedulers", "comma-separated registry names",
                 "easy,conservative");
  cli.add_option("m", "processors", "64");
  cli.add_option("step-size", "rate increment, jobs per kilotick", "20");
  cli.add_option("step-stop", "maximum rate, jobs per kilotick", "200");
  cli.add_option("seed", "root seed (per-step seeds derive from it)", "42");
  cli.add_option("warmup", "warmup jobs per step", "100");
  cli.add_option("measure", "measured jobs per step", "500");
  cli.add_option("cooldown", "cooldown jobs per step", "100");
  cli.add_option("window", "dispatch window (jobs per decision)", "128");
  cli.add_option("bail", "bail-out queue depth", "5000");
  cli.add_option("p-min", "minimum service time (ticks)", "1");
  cli.add_option("p-max", "maximum service time (ticks)", "100");
  cli.add_option("width", "width distribution: pow2|uniform|narrow", "pow2");
  cli.add_option("alpha", "width cap as a fraction of m", "1/2");
  cli.add_option("churn", "churn events per kilotick (0 = off)", "0");
  cli.add_option("compact", "history compaction interval, ticks", "256");
  cli.add_flag("no-incremental",
               "force the scratch instance rebuild per decision");
  cli.add_flag("verify-incremental",
               "run both planning paths per decision and cross-check them");
  cli.add_flag("machine-readable", "CSV rows instead of aligned tables");
  cli.add_flag("stable", "blank wall-clock columns (deterministic output)");
  if (!cli.parse(argc, argv)) return 0;

  using namespace resched;
  LoadGenConfig load;
  load.m = cli.get_int("m");
  load.p_min = cli.get_int("p-min");
  load.p_max = cli.get_int("p-max");
  load.width = parse_width(cli.get_string("width"));
  load.alpha = parse_alpha(cli.get_string("alpha"));

  ServiceConfig config;
  config.phases.warmup = static_cast<std::uint64_t>(cli.get_int("warmup"));
  config.phases.measure = static_cast<std::uint64_t>(cli.get_int("measure"));
  config.phases.cooldown =
      static_cast<std::uint64_t>(cli.get_int("cooldown"));
  config.dispatch_window = static_cast<std::size_t>(cli.get_int("window"));
  config.bail_queue_depth = static_cast<std::size_t>(cli.get_int("bail"));
  config.incremental = !cli.get_flag("no-incremental");
  config.verify_incremental = cli.get_flag("verify-incremental");
  config.churn.events_per_kilotick = cli.get_double("churn");
  config.compact_interval = cli.get_int("compact");
  const bool stable = cli.get_flag("stable");
  config.record_wall_latency = !stable;

  const double step_size = cli.get_double("step-size");
  const double step_stop = cli.get_double("step-stop");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool csv = cli.get_flag("machine-readable");

  if (csv)
    std::cout << "record,scheduler,rate,arrivals,completed,wait_p50,"
                 "wait_p99,wait_p999,dec_ns_p50,dec_ns_p99,dec_ns_p999,"
                 "queue_mean,queue_peak,queue_end,sustained,saturated,"
                 "decisions,decisions_measured,decisions_incremental,"
                 "decisions_scratch,suffix_jobs,frames_rewound,"
                 "snapshots_reused,deferred_dispatches,canceled,"
                 "churn_events\n";

  for (const std::string& name : split(cli.get_string("schedulers"), ',')) {
    const auto scheduler = make_scheduler(name);
    const ServiceSweepResult sweep = run_service_sweep(
        *scheduler, load, seed, step_size, step_stop, config);

    if (!csv)
      std::cout << "=== " << name << " ===  (m = " << load.m
                << ", phases " << config.phases.warmup << "/"
                << config.phases.measure << "/" << config.phases.cooldown
                << ", seed " << seed << ", plan "
                << (scheduler->capabilities().incremental_replan &&
                            (config.incremental || config.verify_incremental)
                        ? "incremental"
                        : "scratch")
                << ")\n";
    Table table({"rate/kt", "arrived", "done", "wait p50", "wait p99",
                 "wait p999", "dec ns p50", "dec ns p99", "dec ns p999",
                 "q mean", "q peak", "q end", "decisions", "inc/scr",
                 "sustained", "sat"});
    for (const ServiceStepResult& step : sweep.steps) {
      const auto wait = quantile_cells(step.wait_ticks, false);
      const auto dec = quantile_cells(step.decision_ns, stable);
      const std::string queue_mean =
          step.queue_depth.count() == 0
              ? "-"
              : format_double(step.queue_depth.mean(), 1);
      const std::string plan_split =
          std::to_string(step.decisions_incremental) + "/" +
          std::to_string(step.decisions_scratch);
      if (csv) {
        std::cout << "service," << name << ','
                  << format_double(step.offered_rate, 3) << ','
                  << step.arrivals << ',' << step.completed << ','
                  << join(wait, ",") << ',' << join(dec, ",") << ','
                  << queue_mean << ',' << step.peak_queue_depth << ','
                  << step.end_queue_depth << ','
                  << format_double(step.sustained_rate, 3) << ','
                  << (step.saturated ? 1 : 0) << ','
                  << step.decisions << ',' << step.decisions_measured << ','
                  << step.decisions_incremental << ','
                  << step.decisions_scratch << ','
                  << step.suffix_jobs_replanned << ','
                  << step.plan_frames_rewound << ','
                  << step.snapshots_reused << ','
                  << step.deferred_dispatches << ',' << step.canceled << ','
                  << step.churn_events << "\n";
      } else {
        table.add(format_double(step.offered_rate, 1), step.arrivals,
                  step.completed, wait[0], wait[1], wait[2], dec[0], dec[1],
                  dec[2], queue_mean, step.peak_queue_depth,
                  step.end_queue_depth, step.decisions, plan_split,
                  format_double(step.sustained_rate, 2),
                  step.saturated ? "yes" : "no");
      }
    }
    if (!csv) table.print(std::cout);

    if (csv) {
      std::cout << "knee," << name << ','
                << (sweep.has_knee() ? format_double(sweep.knee_rate(), 3)
                                     : std::string("none"))
                << ",,,,,,,,,,,,,,,,,,,,,,,\n";
    } else if (sweep.has_knee()) {
      std::cout << "saturation knee: " << format_double(sweep.knee_rate(), 1)
                << " jobs/kilotick (step " << sweep.knee_index + 1 << ")\n\n";
    } else {
      std::cout << "no saturation knee up to "
                << format_double(step_stop, 1) << " jobs/kilotick\n\n";
    }
  }
  return 0;
}
