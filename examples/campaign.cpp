// Campaign runner: regenerate the paper's figure data as CSV, or sweep all
// schedulers over seeded random instances in parallel.
//
// A thin driver over the library:
//
//   ./build/examples/campaign --experiment=fig3 > fig3.csv
//   ./build/examples/campaign --experiment=fig4 --step=0.01 > fig4.csv
//   ./build/examples/campaign --experiment=alpha --seeds=20 > alpha.csv
//   ./build/examples/campaign --experiment=sweep --instances=64 --threads=8
//
// The sweep experiment is powered by sim/campaign.hpp's run_campaign: same
// seed means the same aggregated table for any --threads value.
//
// Also doubles as an instance exporter: --dump-instances writes every
// generated instance in SWF form next to the CSV.
#include <fstream>
#include <iostream>

#include "algorithms/lsrc.hpp"
#include "algorithms/scheduler.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/io.hpp"
#include "generators/adversarial.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "scenario/matrix.hpp"
#include "sim/campaign.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

int run_fig3(bool dump) {
  std::cout << "k,alpha,m,opt,lsrc_bad,ratio,predicted,lpt\n";
  for (std::int64_t k = 2; k <= 14; ++k) {
    const Prop2Family family = prop2_instance(k);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    const Schedule lpt =
        LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
    std::cout << k << ',' << Rational(2, k).to_double() << ','
              << family.instance.m() << ',' << family.optimal_makespan << ','
              << bad.makespan(family.instance) << ','
              << makespan_ratio(bad.makespan(family.instance),
                                family.optimal_makespan)
                     .to_double()
              << ',' << prop2_ratio_for_k(k).to_double() << ','
              << lpt.makespan(family.instance) << "\n";
    if (dump) {
      std::ofstream os("prop2_k" + std::to_string(k) + ".swf");
      write_swf(family.instance, os);
    }
  }
  return 0;
}

int run_fig4(double step) {
  std::cout << "alpha,b2,b1,upper\n";
  for (double a = step; a <= 1.0 + 1e-9; a += step) {
    // Exact rational grid point (denominator 10000 keeps int64 safe).
    const Rational alpha(static_cast<std::int64_t>(a * 10000 + 0.5), 10000);
    if (alpha <= Rational(0) || alpha > Rational(1)) continue;
    std::cout << alpha.to_double() << ','
              << lsrc_lower_bound_b2(alpha).to_double() << ','
              << lsrc_lower_bound_b1(alpha).to_double() << ','
              << alpha_upper_bound(alpha).to_double() << "\n";
  }
  return 0;
}

int run_alpha(std::uint64_t seeds, bool dump) {
  std::cout << "alpha,algorithm,seed,makespan,lower_bound,ratio\n";
  for (const auto& [num, den] : std::vector<std::pair<int, int>>{
           {1, 8}, {1, 4}, {1, 2}, {3, 4}, {1, 1}}) {
    const Rational alpha(num, den);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      WorkloadConfig config;
      config.n = 80;
      config.m = 32;
      config.alpha = alpha;
      const Instance base = random_workload(config, seed * 7919);
      AlphaReservationConfig resa;
      resa.alpha = alpha;
      const Instance instance =
          with_alpha_restricted_reservations(base, resa, seed);
      const Time lb = makespan_lower_bound(instance);
      if (dump && seed == 1) {
        std::ofstream os("alpha_" + std::to_string(num) + "_" +
                         std::to_string(den) + ".swf");
        write_swf(instance, os);
      }
      for (const char* name : {"lsrc", "lsrc-lpt", "fcfs", "conservative",
                               "easy"}) {
        const Time cmax =
            make_scheduler(name)->schedule(instance).value().makespan(instance);
        std::cout << alpha.to_double() << ',' << name << ',' << seed << ','
                  << cmax << ',' << lb << ','
                  << static_cast<double>(cmax) / static_cast<double>(lb)
                  << "\n";
      }
    }
  }
  return 0;
}

int run_sweep(const CliParser& cli) {
  CampaignConfig config;
  config.instances = static_cast<std::size_t>(cli.get_int("instances"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.share_instances = cli.get_flag("share");
  const std::string schedulers = cli.get_string("schedulers");
  if (!schedulers.empty()) config.schedulers = split(schedulers, ',');

  const std::size_t n = static_cast<std::size_t>(cli.get_int("n"));
  const ProcCount m = cli.get_int("m");
  const std::int64_t reservations = cli.get_int("reservations");
  const InstanceGenerator generator =
      [n, m, reservations](std::size_t, std::uint64_t seed) {
        WorkloadConfig workload;
        workload.n = n;
        workload.m = m;
        workload.alpha = Rational(1, 2);
        Instance instance = random_workload(workload, seed);
        if (reservations > 0) {
          AlphaReservationConfig resa;
          resa.alpha = Rational(1, 2);
          resa.count = static_cast<std::size_t>(reservations);
          resa.horizon = 2000;
          resa.max_duration = 200;
          instance = with_alpha_restricted_reservations(
              instance, resa, seed ^ 0x9e3779b97f4a7c15ull);
        }
        return instance;
      };

  const CampaignResult result = run_campaign(generator, config);
  std::cout << "campaign: " << result.instances << " instances, seed "
            << config.seed
            << (config.share_instances ? ", shared instances"
                                       : ", regenerated instances")
            << "\n\n";
  result.to_table().print(std::cout);
  // Typed skip reasons (DomainError), not just a bare count.
  for (const CampaignCell& cell : result.cells)
    if (cell.skipped > 0)
      std::cout << "skips[" << cell.scheduler << "]: " << cell.skip_reasons()
                << "\n";
  return 0;
}

// The scenario x scheduler survival matrix (scenario/matrix.hpp), through
// the same campaign engine. See examples/scenarios.cpp for the full driver
// (scenario selection, .scn / SWF loading, CSV export).
int run_scenarios(const CliParser& cli) {
  ScenarioMatrixConfig config;
  config.instances = static_cast<std::size_t>(cli.get_int("instances"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  const std::string schedulers = cli.get_string("schedulers");
  if (!schedulers.empty()) config.schedulers = split(schedulers, ',');

  const ScenarioMatrixResult result =
      run_scenario_matrix(stock_scenarios(cli.get_int("m")), config);
  std::cout << "scenario matrix: " << result.scenarios.size()
            << " scenarios x " << result.schedulers.size() << " schedulers, "
            << result.instances << " instances per cell, seed " << config.seed
            << "\n\n";
  result.survival_table().print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resched;
  CliParser cli("campaign", "CSV sweep runner for the paper's figures");
  cli.add_option("experiment", "one of: fig3, fig4, alpha, sweep, scenarios",
                 "fig3");
  cli.add_option("step", "alpha grid step for fig4", "0.05");
  cli.add_option("seeds", "seeds per cell for the alpha sweep", "10");
  cli.add_option("instances", "sweep: number of generated instances", "32");
  cli.add_option("seed", "sweep: master seed", "1");
  cli.add_option("threads", "sweep: worker threads (0 = all cores)", "0");
  cli.add_option("schedulers",
                 "sweep: comma-separated scheduler names (empty = all)", "");
  cli.add_option("n", "sweep: jobs per instance", "120");
  cli.add_option("m", "sweep: processors", "64");
  cli.add_option("reservations", "sweep: reservations per instance", "8");
  cli.add_flag("share",
               "sweep: generate each instance once and share it across "
               "scheduler tasks (same table as regenerating)");
  cli.add_flag("dump-instances", "also write generated instances as SWF");
  if (!cli.parse(argc, argv)) return 0;

  const std::string experiment = cli.get_string("experiment");
  const bool dump = cli.get_flag("dump-instances");
  if (experiment == "fig3") return run_fig3(dump);
  if (experiment == "fig4") return run_fig4(cli.get_double("step"));
  if (experiment == "alpha")
    return run_alpha(static_cast<std::uint64_t>(cli.get_int("seeds")), dump);
  if (experiment == "sweep") return run_sweep(cli);
  if (experiment == "scenarios") return run_scenarios(cli);
  std::cerr << "unknown experiment '" << experiment << "'\n" << cli.usage();
  return 1;
}
