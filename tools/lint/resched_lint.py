#!/usr/bin/env python3
"""resched-lint: project-invariant static analyzer for the resched codebase.

The repo's headline guarantees -- exact 64-bit tick arithmetic, bit-identical
schedules across thread counts, ~0 allocations per decision on the service hot
path, and transactional commit/rollback discipline -- are enforced dynamically
by differential fuzz, golden hashes and the alloc-budget gate. This tool
encodes them as *source-level* rules so the class of bug is caught before it
compiles:

  R1 time-arith   raw '+', '-', '*' (and '+=', '-=', '*=') on expressions in
                  the 64-bit tick domain (Time, ProcCount, std::int64_t and
                  project aliases/fields/getters of those types) outside the
                  audited allowlist (util/checked.hpp). Route the arithmetic
                  through checked_add / checked_sub / checked_mul /
                  saturating-style helpers, or annotate:
                      // resched-lint: time-arith-audited(<why it cannot overflow>)

  R2 determinism  iteration over std::unordered_{map,set,multimap,multiset}
                  (range-for or .begin()) feeding anything -- schedules,
                  aggregates and serialized output must never depend on hash
                  order; pointer-keyed std::{map,set} (pointer values are not
                  deterministic across runs); and unseeded entropy / wall
                  clocks (rand, srand, random_device, system_clock,
                  steady_clock, high_resolution_clock, gettimeofday,
                  clock_gettime, bare time()) outside the seeded PRNG module
                  (util/prng.*). Annotate deliberate uses:
                      // resched-lint: determinism-audited(<why it never feeds results>)

  R3 hot-path     functions statically reachable from the service dispatch
     allocation   roots (ServiceLoop::*, Scheduler::schedule, Scheduler::replan
                  and overrides) must not contain definite allocation sites:
                  non-placement `new`, malloc/calloc/realloc/strdup/
                  aligned_alloc, make_unique/make_shared, std::function,
                  std::stable_sort / std::inplace_merge / std::stable_partition
                  (libstdc++ heap-allocates their merge buffer -- the PR 8
                  discovery), or a local owning container declaration
                  (std::vector/string/map/... constructed per call; ScratchVec
                  and arena-backed types are exempt). This ties the dynamic
                  alloc_count() budget (bench/alloc_budget.json) to a static
                  reachability check. Annotate amortized/cold sites:
                      // resched-lint: hot-path-alloc-audited(<why the budget holds>)

  R4 frame        every FreeProfile::commit_tentative() call must be paired
     discipline   with accept()/rollback() in the same function (or the token
                  returned to the caller); calls to the legacy checked
                  uncommit(t, q, p) wrapper are flagged for migration to
                  CommitToken. Annotate intentional legacy uses:
                      // resched-lint: frame-audited(<reason>)

Annotation grammar (also documented in BUILDING.md):

    // resched-lint: <rule>-audited(<reason>)              line-scoped
    // resched-lint: <rule>-audited(<reason>) [function]   whole function

with <rule> in {time-arith, determinism, hot-path-alloc, frame}. A line-scoped
annotation on its own line applies to the next code line; a trailing one to
its own line. The <reason> is mandatory and non-empty. A [function]
annotation must sit directly above the function's signature.

Engines
-------
The analyzer is libclang-based when python bindings are importable
(`import clang.cindex` over an exported compile_commands.json): libclang then
resolves the declared type of R1 operand atoms exactly, including through
typedef sugar. Containers without libclang (like the dev image, which ships
only the LLVM C++ libs) fall back to the self-contained textual engine: a
C++ tokenizer plus a project-wide symbol harvest (typedef aliases, struct
fields and function return types in the tick domain) that classifies operand
atoms by spelled type. The textual engine is the deterministic one the CI
baseline gate runs (`--engine textual`); the libclang engine is available via
`--engine libclang` / `auto` and is run as an informational CI step.

Baseline policy
---------------
`tools/lint/baseline.json` holds the accepted findings, each with a mandatory
human-written justification. The gate fails on (a) any finding not in the
baseline, (b) any stale baseline entry -- the baseline must only shrink; prune
entries whose findings were fixed -- and (c) any entry whose justification is
empty or still starts with "TODO". `--update-baseline` rewrites the file:
it prunes stale entries and adds new findings with a "TODO: justify" marker
that the gate will refuse until a human replaces it. Baseline keys are
line-number independent: rule : file : function : normalized source line :
occurrence index.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule registry and project configuration
# --------------------------------------------------------------------------

RULES = ("R1", "R2", "R3", "R4")

ANNOTATION_NAMES = {
    "time-arith": "R1",
    "determinism": "R2",
    "hot-path-alloc": "R3",
    "frame": "R4",
}

# Spelled types that live in the 64-bit tick domain. Project aliases of these
# (discovered via `using X = Time;` etc.) are added during the harvest.
TICK_TYPE_SEEDS = {"Time", "ProcCount", "std::int64_t", "int64_t"}

# Files whose raw arithmetic IS the audited implementation of the checked
# helpers; R1 does not fire inside them.
R1_FILE_ALLOWLIST = {"src/util/checked.hpp"}

# The seeded-PRNG module: the one place entropy primitives are legitimate.
R2_FILE_ALLOWLIST = {"src/util/prng.hpp", "src/util/prng.cpp"}

# Service dispatch roots for R3 reachability (qualified-name regexes).
R3_ROOT_PATTERNS = (
    r"^ServiceLoop::",
    r"(^|::)schedule$",
    r"(^|::)replan$",
)

ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared",
}
ALLOC_ALGOS = {"stable_sort", "inplace_merge", "stable_partition"}
OWNING_CONTAINERS = {
    "vector", "string", "basic_string", "map", "multimap", "set", "multiset",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "deque", "list", "forward_list", "function",
    "ostringstream", "istringstream", "stringstream",
}
# Arena-backed / non-owning types exempt from the local-container rule.
R3_EXEMPT_TYPES = {"ScratchVec", "string_view", "span", "ArenaAlloc"}

ENTROPY_IDENTS = {
    "rand", "srand", "random_device", "gettimeofday", "clock_gettime",
}
WALL_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock"}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
    "case", "default", "goto", "new", "delete", "throw", "sizeof", "alignof",
    "static_assert", "co_return", "co_await", "co_yield",
}

DECL_QUALIFIERS = {"const", "constexpr", "static", "inline", "mutable",
                   "volatile", "register", "thread_local", "typename"}


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int
    col: int


@dataclass
class Comment:
    text: str
    line: int
    own_line: bool  # nothing but whitespace before it on its line


PUNCT3 = {"<<=", ">>=", "...", "->*"}
PUNCT2 = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
          "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##"}


def tokenize(text: str):
    """Returns (tokens, comments, pp_lines). Preprocessor lines are skipped
    (recorded by line number) so macro bodies never confuse the scanner."""
    toks, comments, pp_lines = [], [], set()
    i, n = 0, len(text)
    line, col = 1, 1
    line_has_code = False

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        if c == "\n":
            line_has_code = False
            advance(1)
            continue
        if c in " \t\r\f\v":
            advance(1)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comments.append(Comment(text[i:j], line, not line_has_code))
            advance(j - i)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append(Comment(text[i:j], line, not line_has_code))
            advance(j - i)
            continue
        if c == "#" and not line_has_code:
            # Preprocessor directive: consume to end of line, honoring
            # backslash continuations; record the covered lines.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    k = n
                stripped = text[j:k].rstrip()
                if stripped.endswith("\\"):
                    j = k + 1
                else:
                    j = k
                    break
            start = line
            advance(j - i)
            for ln in range(start, line + 1):
                pp_lines.add(ln)
            continue
        line_has_code = True
        # Raw strings.
        m = re.match(r'(?:u8|u|U|L)?R"([^ ()\\\t\v\f\n]*)\(', text[i:])
        if m:
            term = ")" + m.group(1) + '"'
            j = text.find(term, i + m.end())
            j = n if j == -1 else j + len(term)
            toks.append(Tok("str", text[i:j], line, col))
            advance(j - i)
            continue
        if c == '"' or (c in "uUL" and i + 1 < n and
                        re.match(r'(?:u8|u|U|L)"', text[i:])):
            m = re.match(r'(?:u8|u|U|L)?"(?:[^"\\\n]|\\.)*"', text[i:])
            if m:
                toks.append(Tok("str", m.group(0), line, col))
                advance(m.end())
                continue
        if c == "'" or (c in "uUL" and re.match(r"(?:u8|u|U|L)'", text[i:])):
            m = re.match(r"(?:u8|u|U|L)?'(?:[^'\\\n]|\\.)+'", text[i:])
            if m:
                toks.append(Tok("chr", m.group(0), line, col))
                advance(m.end())
                continue
        if c.isalpha() or c == "_":
            m = re.match(r"[A-Za-z_][A-Za-z0-9_]*", text[i:])
            toks.append(Tok("id", m.group(0), line, col))
            advance(m.end())
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = re.match(r"(?:0[xX][0-9a-fA-F']+|\.?[0-9][0-9a-fA-F'.eEpPxX+-]*)",
                         text[i:])
            # Trim trailing +/- that belong to the next token unless preceded
            # by an exponent marker.
            lit = m.group(0)
            while lit and lit[-1] in "+-" and lit[-2] not in "eEpP":
                lit = lit[:-1]
            m2 = re.match(r"[uUlLzZ]*", text[i + len(lit):])
            lit += m2.group(0)
            toks.append(Tok("num", lit, line, col))
            advance(len(lit))
            continue
        for group in (PUNCT3, PUNCT2):
            p = text[i:i + len(next(iter(group)))]
            if p in group:
                toks.append(Tok("punct", p, line, col))
                advance(len(p))
                break
        else:
            toks.append(Tok("punct", c, line, col))
            advance(1)
        continue
    return toks, comments, pp_lines


# --------------------------------------------------------------------------
# Annotations
# --------------------------------------------------------------------------

ANNOTATION_RE = re.compile(
    r"resched-lint:\s*([a-z-]+)-audited\(([^)]*)\)(\s*\[function\])?")


@dataclass
class Annotation:
    rule: str
    reason: str
    function_scope: bool
    line: int        # line of the comment itself
    target_line: int  # line the annotation applies to


class AnnotationSet:
    def __init__(self, comments, code_lines):
        self.by_line: dict[int, set[str]] = {}
        self.function_anns: list[Annotation] = []
        self.problems: list[tuple[int, str]] = []
        for comment in comments:
            for m in ANNOTATION_RE.finditer(comment.text):
                name, reason, fn_scope = m.group(1), m.group(2).strip(), m.group(3)
                rule = ANNOTATION_NAMES.get(name)
                if rule is None:
                    self.problems.append(
                        (comment.line,
                         f"unknown resched-lint annotation '{name}-audited'"))
                    continue
                if not reason:
                    self.problems.append(
                        (comment.line,
                         f"resched-lint {name}-audited() needs a reason"))
                    continue
                target = comment.line
                if comment.own_line:
                    target = next((ln for ln in code_lines
                                   if ln > comment.line), comment.line)
                ann = Annotation(rule, reason, bool(fn_scope), comment.line,
                                 target)
                if fn_scope:
                    self.function_anns.append(ann)
                else:
                    self.by_line.setdefault(target, set()).add(rule)

    def suppressed(self, rule, line):
        return rule in self.by_line.get(line, set())


# --------------------------------------------------------------------------
# Symbol harvest (project-wide, textual engine)
# --------------------------------------------------------------------------

class Symbols:
    def __init__(self):
        self.tick_types = set(TICK_TYPE_SEEDS)
        self.tick_fields: set[str] = set()      # struct fields of tick type
        self.tick_funcs: set[str] = set()       # functions returning tick type
        self.unordered_names: set[str] = set()  # fields of unordered type

    def is_tick_type_tokens(self, type_tokens):
        s = type_str(type_tokens)
        base = s.replace("const ", "").replace("&", "").strip()
        return base in self.tick_types


def type_str(tokens):
    out = []
    for t in tokens:
        if out and t.kind == "id" and out[-1] not in ("::",):
            out.append(" ")
        out.append(t.text if t.kind != "id" else t.text)
    # Canonical-ish: collapse "std :: int64_t" to "std::int64_t".
    s = "".join(out).replace(" ::", "::").replace(":: ", "::")
    return s


def harvest_aliases(files_tokens, symbols):
    """`using NAME = TYPE;` where TYPE is (or becomes) a tick type."""
    changed = True
    while changed:
        changed = False
        for _, toks in files_tokens.items():
            for i, t in enumerate(toks):
                if t.kind == "id" and t.text == "using" and i + 2 < len(toks):
                    name_tok = toks[i + 1]
                    if name_tok.kind != "id" or toks[i + 2].text != "=":
                        continue
                    j = i + 3
                    ty = []
                    while j < len(toks) and toks[j].text != ";":
                        ty.append(toks[j])
                        j += 1
                    base = type_str(ty).replace("const ", "").strip()
                    if base in symbols.tick_types and \
                            name_tok.text not in symbols.tick_types:
                        symbols.tick_types.add(name_tok.text)
                        changed = True


def split_statements(tokens, start, end):
    """Yields token index ranges for statements at one brace depth, skipping
    nested brace blocks."""
    depth = 0
    stmt_start = start
    i = start
    while i < end:
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                stmt_start = i + 1
        elif t == ";" and depth == 0:
            yield (stmt_start, i)
            stmt_start = i + 1
        i += 1


def harvest_class_members(toks, symbols):
    """Record tick-typed and unordered-typed fields plus tick-returning
    method declarations from struct/class bodies."""
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].kind == "id" and toks[i].text in ("struct", "class"):
            # Find the opening brace of the class body (skip fwd decls).
            j = i + 1
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j >= n or toks[j].text == ";":
                i = j + 1
                continue
            # Matching close brace.
            depth = 0
            k = j
            while k < n:
                if toks[k].text == "{":
                    depth += 1
                elif toks[k].text == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            for (s, e) in split_statements(toks, j + 1, k):
                harvest_member_statement(toks, s, e, symbols)
            i = j + 1  # descend into nested classes too
            continue
        i += 1


def harvest_member_statement(toks, s, e, symbols):
    # Strip qualifiers and access specifiers.
    while s < e and toks[s].kind == "id" and (
            toks[s].text in DECL_QUALIFIERS or
            toks[s].text in ("public", "private", "protected", "friend",
                             "virtual", "explicit")):
        s += 1
    if s < e and toks[s].text == ":":
        s += 1
    if s >= e or toks[s].kind != "id":
        return
    # Collect the type: identifier chain plus optional template args.
    ty, i = read_type(toks, s, e)
    if not ty or i >= e:
        return
    tys = type_str(ty)
    base = tys.replace("const ", "").replace("&", "").strip()
    is_tick = base in symbols.tick_types
    is_unordered = "unordered_" in tys
    # Method declaration: ident '(' ...
    if toks[i].kind == "id" and i + 1 < e and toks[i + 1].text == "(":
        if is_tick:
            symbols.tick_funcs.add(toks[i].text)
        return
    # Field(s): ident [= init] [, ident ...]
    while i < e and toks[i].kind == "id":
        name = toks[i].text
        if is_tick:
            symbols.tick_fields.add(name)
        if is_unordered:
            symbols.unordered_names.add(name)
        i += 1
        depth = 0
        while i < e:
            t = toks[i].text
            if t in ("(", "[", "{", "<"):
                depth += 1
            elif t in (")", "]", "}", ">"):
                depth -= 1
            elif t == "," and depth == 0:
                i += 1
                break
            i += 1


def read_type(toks, s, e):
    """Reads a type at toks[s:e]: qualified id chain with optional <...> and
    trailing const/&/*. Returns (type_tokens, next_index)."""
    ty = []
    i = s
    while i < e and toks[i].kind == "id" and toks[i].text in DECL_QUALIFIERS:
        ty.append(toks[i])
        i += 1
    if i >= e or toks[i].kind != "id" or toks[i].text in CONTROL_KEYWORDS:
        return [], s
    ty.append(toks[i])
    i += 1
    while i + 1 < e and toks[i].text == "::" and toks[i + 1].kind == "id":
        ty.append(toks[i])
        ty.append(toks[i + 1])
        i += 2
    if i < e and toks[i].text == "<":
        depth = 0
        while i < e:
            if toks[i].text == "<":
                depth += 1
            elif toks[i].text == ">":
                depth -= 1
                ty.append(toks[i])
                i += 1
                if depth == 0:
                    break
                continue
            elif toks[i].text == ">>":
                depth -= 2
                ty.append(toks[i])
                i += 1
                if depth <= 0:
                    break
                continue
            ty.append(toks[i])
            i += 1
    while i < e and toks[i].text in ("const", "&", "&&", "*"):
        ty.append(toks[i])
        i += 1
    return ty, i


# --------------------------------------------------------------------------
# Function extraction
# --------------------------------------------------------------------------

@dataclass
class Func:
    qualified: str
    name: str
    return_type: str
    sig_line: int
    body_start: int  # token index of '{'
    body_end: int    # token index of matching '}'
    param_range: tuple[int, int]  # token indices of '(' and ')' of params
    file: str = ""
    locals_tick: set = field(default_factory=set)
    locals_other: set = field(default_factory=set)  # non-tick decls (shadowing)
    locals_unordered: set = field(default_factory=set)
    calls: set = field(default_factory=set)
    annotations: set = field(default_factory=set)


def extract_functions(toks, path):
    funcs = []
    ctx = []  # stack of ('ns'|'class'|'brace', name)
    pending_start = 0
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == ";":
            pending_start = i + 1
            i += 1
            continue
        if t == "}":
            if ctx:
                ctx.pop()
            pending_start = i + 1
            i += 1
            continue
        if t == "{":
            pend = toks[pending_start:i]
            kind, name = classify_block(pend)
            if kind == "fn":
                close = match_brace(toks, i)
                fn = make_func(toks, pend, pending_start, i, close, ctx, path)
                if fn is not None:
                    funcs.append(fn)
                    i = close + 1
                    pending_start = i
                    continue
                ctx.append(("brace", ""))
            else:
                ctx.append((kind, name))
            pending_start = i + 1
            i += 1
            continue
        i += 1
    return funcs


def classify_block(pend):
    """What does this '{' open? Returns (kind, name)."""
    idx = 0
    # Skip template<...> prefix.
    while idx < len(pend) and pend[idx].text == "template":
        idx += 1
        if idx < len(pend) and pend[idx].text == "<":
            depth = 0
            while idx < len(pend):
                if pend[idx].text == "<":
                    depth += 1
                elif pend[idx].text == ">":
                    depth -= 1
                    idx += 1
                    if depth == 0:
                        break
                    continue
                idx += 1
    if idx >= len(pend):
        return ("brace", "")
    head = pend[idx].text
    if head == "namespace":
        name = pend[idx + 1].text if idx + 1 < len(pend) and \
            pend[idx + 1].kind == "id" else ""
        return ("ns", name)
    if head in ("class", "struct", "union"):
        j = idx + 1
        name = ""
        while j < len(pend):
            if pend[j].kind == "id" and pend[j].text not in ("final",
                                                             "alignas"):
                name = pend[j].text
            if pend[j].text in (":", "<"):
                break
            j += 1
        return ("class", name)
    if head in ("enum",):
        return ("brace", "")
    if head in CONTROL_KEYWORDS or head in ("do", "else", "try"):
        return ("brace", "")
    if pend and pend[-1].text in ("=", ",", "(", "[", "return"):
        return ("brace", "")  # braced initializer / lambda body fragment
    # Function definition: needs a top-level parenthesized group.
    depth = 0
    has_parens = False
    for t in pend[idx:]:
        if t.text == "(":
            has_parens = True
            break
    return ("fn", "") if has_parens else ("brace", "")


def match_brace(toks, i):
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def make_func(toks, pend, pend_start, body_open, body_close, ctx, path):
    # Name = identifier chain immediately before the first '(' in pend.
    first_paren = None
    for k, t in enumerate(pend):
        if t.text == "(":
            first_paren = k
            break
    if first_paren is None or first_paren == 0:
        return None
    # Walk back over the name chain (possibly qualified, operators, dtors).
    k = first_paren - 1
    name_parts = []
    if pend[k].kind != "id" and pend[k].text not in (">",):
        # e.g. operator+, operator(), operator[]
        j = k
        while j >= 0 and pend[j].text != "operator":
            j -= 1
        if j >= 0:
            name_parts = [t.text for t in pend[j:first_paren]]
            k = j - 1
        else:
            return None
    else:
        # Skip a template argument list on the name (Foo<T>::bar handled
        # via the :: walk below; name itself rarely templated here).
        name_parts = [pend[k].text]
        k -= 1
    while k >= 1 and pend[k].text == "::" and pend[k - 1].kind == "id":
        name_parts = [pend[k - 1].text, "::"] + name_parts
        k -= 2
    if k >= 0 and pend[k].text == "~":
        name_parts = ["~"] + name_parts
        k -= 1
    name = "".join(name_parts)
    bare = name.split("::")[-1]
    if bare in CONTROL_KEYWORDS:
        return None
    ret = type_str(pend[:k + 1]) if k >= 0 else ""
    classes = [nm for (kind, nm) in ctx if kind == "class" and nm]
    qualified = "::".join(classes + [name]) if classes and "::" not in name \
        else name
    # Parameter token range: first '(' in the ORIGINAL token stream.
    popen = pend_start + (len(pend) - len(pend)) + 0
    # Locate the matching ')' for the parameter list.
    p0 = pend_start
    while toks[p0].text != "(":
        p0 += 1
    depth = 0
    p1 = p0
    while p1 < body_open:
        if toks[p1].text == "(":
            depth += 1
        elif toks[p1].text == ")":
            depth -= 1
            if depth == 0:
                break
        p1 += 1
    return Func(qualified=qualified, name=bare, return_type=ret,
                sig_line=pend[0].line if pend else toks[body_open].line,
                body_start=body_open, body_end=body_close,
                param_range=(p0, p1), file=path)


def scan_function_locals(toks, fn, symbols):
    """Populate fn.locals_tick / locals_unordered from params and body, and
    fn.calls from identifier( sites."""
    # Parameters.
    p0, p1 = fn.param_range
    start = p0 + 1
    depth = 0
    i = start
    while i <= p1:
        t = toks[i].text
        if t in ("(", "<", "[", "{"):
            depth += 1
        elif t in (")", ">", "]", "}"):
            depth -= 1
        if (t == "," and depth == 0) or i == p1:
            scan_decl(toks, start, i, fn, symbols)
            start = i + 1
        i += 1
    # Body statements at any depth: declarations appear after ; { } ( or ,
    # boundaries; we scan windows conservatively.
    i = fn.body_start + 1
    while i < fn.body_end:
        t = toks[i]
        if t.kind == "id" and t.text not in CONTROL_KEYWORDS:
            if i + 1 < fn.body_end and toks[i + 1].text == "(" and \
                    (i == 0 or toks[i - 1].text not in (".", "->")):
                # Skip std::-qualified calls: they never resolve to project
                # functions (kills the std::to_string -> Table::to_string
                # false call-graph edge).
                qualifier = ""
                if i >= 2 and toks[i - 1].text == "::" and \
                        toks[i - 2].kind == "id":
                    qualifier = toks[i - 2].text
                if qualifier not in ("std", "chrono", "ranges"):
                    fn.calls.add(t.text)
            prev = toks[i - 1].text if i > fn.body_start else "{"
            if prev in (";", "{", "}", "(", ",") or prev in ("for",):
                ty, j = read_type(toks, i, fn.body_end)
                if ty and j < fn.body_end and toks[j].kind == "id" and \
                        j + 1 < fn.body_end and \
                        toks[j + 1].text in ("=", ";", ",", ")", "{", "("):
                    tys = type_str(ty)
                    base = tys.replace("const ", "").replace("&", "").strip()
                    if base in symbols.tick_types:
                        fn.locals_tick.add(toks[j].text)
                    else:
                        fn.locals_other.add(toks[j].text)
                    if "unordered_" in tys:
                        fn.locals_unordered.add(toks[j].text)
            # auto x = <tick expr>
            if t.text == "auto" and i + 2 < fn.body_end and \
                    toks[i + 1].kind == "id" and toks[i + 2].text == "=":
                rhs = toks[i + 3] if i + 3 < fn.body_end else None
                if rhs is not None and rhs.kind == "id":
                    if rhs.text in fn.locals_tick or \
                            rhs.text in symbols.tick_fields or \
                            rhs.text in symbols.tick_funcs or \
                            rhs.text.startswith("checked_"):
                        fn.locals_tick.add(toks[i + 1].text)
        i += 1


def scan_decl(toks, s, e, fn, symbols):
    ty, i = read_type(toks, s, e)
    if not ty or i > e or i >= len(toks):
        return
    if toks[i].kind == "id":
        tys = type_str(ty)
        base = tys.replace("const ", "").replace("&", "").strip()
        if base in symbols.tick_types:
            fn.locals_tick.add(toks[i].text)
        else:
            fn.locals_other.add(toks[i].text)
        if "unordered_" in tys:
            fn.locals_unordered.add(toks[i].text)


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------

@dataclass
class Finding:
    rule: str
    file: str
    line: int
    col: int
    function: str
    message: str
    snippet: str
    key: str = ""


def normalize_snippet(line_text):
    return re.sub(r"\s+", " ", line_text.strip())[:120]


def finalize_keys(findings, file_lines):
    ordered = sorted(findings, key=lambda f: (f.file, f.line, f.col, f.rule))
    seen = {}
    for f in ordered:
        text = ""
        lines = file_lines.get(f.file)
        if lines and 1 <= f.line <= len(lines):
            text = lines[f.line - 1]
        f.snippet = normalize_snippet(text)
        base = f"{f.rule}:{f.file}:{f.function}:{f.snippet}"
        idx = seen.get(base, 0)
        seen[base] = idx + 1
        f.key = f"{base}#{idx}"
    return ordered


# --------------------------------------------------------------------------
# R1: raw time arithmetic
# --------------------------------------------------------------------------

BINARY_PREV = ("id", "num")  # plus ')' and ']' punct


def prev_is_value(toks, i, lo):
    if i <= lo:
        return False
    p = toks[i - 1]
    if p.kind == "id" and p.text in CONTROL_KEYWORDS:
        return False  # `return -x`, `case -1` ...: unary context
    return p.kind in BINARY_PREV or p.text in (")", "]")


def classify_atom_left(toks, i, lo, fn, symbols):
    """Classify the expression ending at token i (inclusive). Returns
    (is_tick, atom_desc)."""
    t = toks[i]
    if t.text in (")", "]"):
        opener = "(" if t.text == ")" else "["
        depth = 0
        j = i
        while j > lo:
            if toks[j].text == t.text:
                depth += 1
            elif toks[j].text == opener:
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j > lo and toks[j - 1].text == ">":
            # `xxx_cast<T>(expr)`: the cast target decides the domain.
            target = cast_target_type(toks, j - 1, lo)
            if target is not None:
                return target, "cast"
        if j > lo and toks[j - 1].kind == "id":
            # call or subscript on a name chain
            return classify_chain(toks, j - 1, lo, fn, symbols,
                                  is_call=(t.text == ")"))
        # Parenthesized subexpression: tick if any identifier inside is.
        for k in range(j + 1, i):
            if toks[k].kind == "id" and ident_is_tick(toks, k, fn, symbols):
                return True, toks[k].text
        return False, "(...)"
    if t.kind == "num":
        return False, t.text
    if t.kind == "id":
        return classify_chain(toks, i, lo, fn, symbols, is_call=False)
    return False, t.text


CAST_KEYWORDS = {"static_cast", "const_cast", "reinterpret_cast"}


def cast_target_type(toks, close_angle, lo):
    """toks[close_angle] is '>'. If this closes an `xxx_cast<T>` target,
    returns True/False for T in the tick domain, else None."""
    depth = 0
    j = close_angle
    while j > lo:
        t = toks[j].text
        if t in (">", ">>"):
            depth += len(t)
        elif t == "<":
            depth -= 1
            if depth == 0:
                break
        j -= 1
    if j <= lo or toks[j - 1].text not in CAST_KEYWORDS:
        return None
    ty = type_str(toks[j + 1:close_angle])
    base = ty.replace("const ", "").replace("&", "").strip()
    return base in ("Time", "ProcCount", "std::int64_t", "int64_t")


def classify_chain(toks, i, lo, fn, symbols, is_call):
    """Classify a name chain ending at identifier index i."""
    name = toks[i].text
    has_member_access = i >= 2 and toks[i - 1].text in (".", "->")
    if is_call:
        return name in symbols.tick_funcs or name.startswith("checked_"), \
            name + "()"
    if not has_member_access:
        if name in fn.locals_tick:
            return True, name
        if name in fn.locals_other:  # a local shadows any same-named field
            return False, name
        if name in symbols.tick_fields:  # implicit this-> member
            return True, name
        return False, name
    return name in symbols.tick_fields, "." + name


def ident_is_tick(toks, i, fn, symbols):
    name = toks[i].text
    nxt = toks[i + 1].text if i + 1 < len(toks) else ""
    if nxt == "(":
        return name in symbols.tick_funcs or name.startswith("checked_")
    if name in fn.locals_tick:
        return True
    if name in fn.locals_other:
        return False
    return name in symbols.tick_fields


def classify_atom_right(toks, i, hi, fn, symbols):
    """Classify the expression starting at token i."""
    # Skip unary prefixes.
    while i < hi and toks[i].text in ("-", "+", "!", "~", "*", "&"):
        i += 1
    if i >= hi:
        return False, ""
    t = toks[i]
    if t.text == "(":
        depth = 0
        j = i
        while j < hi:
            if toks[j].text == "(":
                depth += 1
            elif toks[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        for k in range(i + 1, j):
            if toks[k].kind == "id" and ident_is_tick(toks, k, fn, symbols):
                return True, toks[k].text
        return False, "(...)"
    if t.kind == "num":
        return False, t.text
    if t.kind == "id":
        if t.text in CAST_KEYWORDS and i + 1 < hi and \
                toks[i + 1].text == "<":
            depth = 0
            j = i + 1
            while j < hi:
                x = toks[j].text
                if x == "<":
                    depth += 1
                elif x in (">", ">>"):
                    depth -= len(x)
                    if depth <= 0:
                        break
                j += 1
            ty = type_str(toks[i + 2:j])
            base = ty.replace("const ", "").replace("&", "").strip()
            return base in ("Time", "ProcCount", "std::int64_t",
                            "int64_t"), "cast"
        # Walk the chain forward to its last member.
        j = i
        while j + 2 < hi and toks[j + 1].text in (".", "->", "::") and \
                toks[j + 2].kind == "id":
            j += 2
        name = toks[j].text
        nxt = toks[j + 1].text if j + 1 < hi else ""
        if nxt == "(":
            return name in symbols.tick_funcs or \
                name.startswith("checked_"), name + "()"
        if j == i and toks[j - 1].text not in (".", "->"):
            if name in fn.locals_tick:
                return True, name
            if name in fn.locals_other:
                return False, name
            if name in symbols.tick_fields:
                return True, name
            return False, name
        return name in symbols.tick_fields, "." + name
    return False, t.text


TYPE_NAME_HINTS = None  # filled per run: union of tick types + common types


def rule_r1(toks, fn, symbols, ann, relpath, findings):
    if relpath in R1_FILE_ALLOWLIST:
        return
    lo, hi = fn.body_start, fn.body_end
    i = lo + 1
    while i < hi:
        t = toks[i]
        if t.kind != "punct" or t.text not in ("+", "-", "*", "+=", "-=",
                                               "*="):
            i += 1
            continue
        if t.text in ("+", "-", "*"):
            if not prev_is_value(toks, i, lo):
                i += 1
                continue
            if t.text == "*":
                nxt = toks[i + 1] if i + 1 < hi else None
                if nxt is None or (nxt.kind not in ("id", "num") and
                                   nxt.text != "("):
                    i += 1
                    continue
                # `Time* p` style declarations: prev ident is a known type.
                if toks[i - 1].kind == "id" and \
                        toks[i - 1].text in symbols.tick_types:
                    i += 1
                    continue
            # operator+ / operator- definitions or calls
            if toks[i - 1].kind == "id" and toks[i - 1].text == "operator":
                i += 1
                continue
        left_tick, left_desc = classify_atom_left(toks, i - 1, lo, fn,
                                                  symbols)
        right_tick, right_desc = classify_atom_right(toks, i + 1, hi, fn,
                                                     symbols)
        if not (left_tick or right_tick):
            i += 1
            continue
        if ann.suppressed("R1", t.line) or "R1" in fn.annotations:
            i += 1
            continue
        which = left_desc if left_tick else right_desc
        findings.append(Finding(
            "R1", relpath, t.line, t.col, fn.qualified,
            f"raw '{t.text}' on tick-domain operand '{which}'; route through "
            f"checked_add/checked_sub/checked_mul or annotate "
            f"time-arith-audited(...)", ""))
        i += 1


# --------------------------------------------------------------------------
# R2: determinism
# --------------------------------------------------------------------------

def rule_r2(toks, funcs, symbols, ann, relpath, findings):
    if relpath in R2_FILE_ALLOWLIST:
        return
    n = len(toks)

    def fn_at(line):
        for f in funcs:
            if toks[f.body_start].line <= line <= toks[f.body_end].line:
                return f
        return None

    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        f = fn_at(t.line)
        suppressed = ann.suppressed("R2", t.line) or \
            (f is not None and "R2" in f.annotations)
        # Entropy / wall-clock primitives.
        if t.text in ENTROPY_IDENTS:
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if prev in (".", "->"):
                continue  # member named rand? not the libc one
            if t.text in ("rand", "srand") and nxt != "(":
                continue
            if not suppressed:
                findings.append(Finding(
                    "R2", relpath, t.line, t.col,
                    f.qualified if f else "<file scope>",
                    f"unseeded entropy source '{t.text}' outside util/prng; "
                    f"all randomness must flow through the seeded Prng",
                    ""))
            continue
        if t.text in WALL_CLOCKS:
            if not suppressed:
                findings.append(Finding(
                    "R2", relpath, t.line, t.col,
                    f.qualified if f else "<file scope>",
                    f"wall clock '{t.text}' in deterministic code; timing "
                    f"belongs to the audited latency modules "
                    f"(determinism-audited) or the bench layer", ""))
            continue
        if t.text == "time" and i + 1 < n and toks[i + 1].text == "(" and \
                (i == 0 or toks[i - 1].text not in (".", "->", "::")):
            # bare time(...) libc call; `Time` the type differs by case.
            inner = toks[i + 2].text if i + 2 < n else ""
            if inner in ("nullptr", "NULL", "0", ")"):
                if not suppressed:
                    findings.append(Finding(
                        "R2", relpath, t.line, t.col,
                        f.qualified if f else "<file scope>",
                        "libc time() is a wall clock; deterministic code "
                        "must not read it", ""))
            continue

    # Unordered-container iteration + pointer-keyed ordered containers.
    for f in funcs:
        body = range(f.body_start + 1, f.body_end)
        for i in body:
            t = toks[i]
            if t.kind != "id":
                continue
            unordered = t.text in f.locals_unordered or \
                t.text in symbols.unordered_names
            if not unordered:
                continue
            suppressed = ann.suppressed("R2", t.line) or \
                "R2" in f.annotations
            nxt1 = toks[i + 1].text if i + 1 < f.body_end else ""
            nxt2 = toks[i + 2].text if i + 2 < f.body_end else ""
            # range-for: `for (decl : name)` -- previous non-chain token ':'
            prev = toks[i - 1].text if i > 0 else ""
            if prev == ":" and not suppressed:
                findings.append(Finding(
                    "R2", relpath, t.line, t.col, f.qualified,
                    f"range-for over unordered container '{t.text}': hash "
                    f"order must not feed schedules/aggregates/output; use "
                    f"a sorted container or sort the keys first", ""))
                continue
            if nxt1 == "." and nxt2 in ("begin", "cbegin", "rbegin") and \
                    not suppressed:
                findings.append(Finding(
                    "R2", relpath, t.line, t.col, f.qualified,
                    f"iteration over unordered container '{t.text}' "
                    f"(.{nxt2}): hash order is not deterministic", ""))

    # Pointer-keyed map/set declarations anywhere in the file.
    text_lines = {}
    i = 0
    while i < n - 1:
        t = toks[i]
        if t.kind == "id" and t.text in ("map", "set", "multimap",
                                         "multiset") and \
                toks[i + 1].text == "<":
            # key type = tokens up to first top-level ',' or '>'
            j = i + 2
            depth = 1
            key_has_ptr = False
            while j < n and depth > 0:
                x = toks[j].text
                if x == "<":
                    depth += 1
                elif x in (">", ">>"):
                    depth -= len(x)
                elif x == "," and depth == 1:
                    break
                elif x == "*" and depth == 1:
                    key_has_ptr = True
                j += 1
            if key_has_ptr and not ann.suppressed("R2", t.line):
                f = None
                for fx in funcs:
                    if toks[fx.body_start].line <= t.line <= \
                            toks[fx.body_end].line:
                        f = fx
                        break
                if f is None or "R2" not in f.annotations:
                    findings.append(Finding(
                        "R2", relpath, t.line, t.col,
                        f.qualified if f else "<file scope>",
                        f"pointer-keyed std::{t.text}: pointer order is not "
                        f"deterministic across runs; key by a stable id",
                        ""))
        i += 1


# --------------------------------------------------------------------------
# R3: hot-path allocation
# --------------------------------------------------------------------------

def build_call_graph(all_funcs):
    by_name: dict[str, list[Func]] = {}
    for f in all_funcs:
        by_name.setdefault(f.name, []).append(f)
    edges: dict[int, set[int]] = {}
    index = {id(f): k for k, f in enumerate(all_funcs)}
    for f in all_funcs:
        outs = set()
        for callee in f.calls:
            for g in by_name.get(callee, ()):
                outs.add(index[id(g)])
        edges[index[id(f)]] = outs
    return edges, index


def r3_roots(all_funcs):
    roots = []
    for k, f in enumerate(all_funcs):
        for pat in R3_ROOT_PATTERNS:
            if re.search(pat, f.qualified):
                roots.append(k)
                break
    return roots


def reachable_from(edges, roots):
    seen = {}
    stack = [(r, None) for r in roots]
    while stack:
        node, parent = stack.pop()
        if node in seen:
            continue
        seen[node] = parent
        for nxt in edges.get(node, ()):
            if nxt not in seen:
                stack.append((nxt, node))
    return seen


def witness_path(seen, node, all_funcs):
    chain = []
    cur = node
    while cur is not None and len(chain) < 12:
        chain.append(all_funcs[cur].qualified)
        cur = seen.get(cur)
    return " <- ".join(chain)


def rule_r3(file_tokens, funcs_by_file, all_funcs, ann_by_file, findings):
    edges, index = build_call_graph(all_funcs)
    roots = r3_roots(all_funcs)
    seen = reachable_from(edges, roots)
    for relpath, funcs in funcs_by_file.items():
        toks = file_tokens[relpath]
        ann = ann_by_file[relpath]
        for f in funcs:
            k = index[id(f)]
            if k not in seen:
                continue
            if "R3" in f.annotations:
                continue
            path = witness_path(seen, k, all_funcs)
            scan_r3_body(toks, f, ann, relpath, path, findings)


def scan_r3_body(toks, f, ann, relpath, path, findings):
    lo, hi = f.body_start, f.body_end
    i = lo + 1
    while i < hi:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        if ann.suppressed("R3", t.line):
            i += 1
            continue
        nxt = toks[i + 1].text if i + 1 < hi else ""
        if t.text == "new":
            # Placement new (`new (arena) T`) targets pre-owned storage.
            if nxt != "(":
                findings.append(Finding(
                    "R3", relpath, t.line, t.col, f.qualified,
                    f"'new' on the service hot path (reachable: {path}); "
                    f"use the decision Arena or a recycled buffer", ""))
            i += 1
            continue
        if t.text in ALLOC_CALLS and nxt in ("(", "<"):
            findings.append(Finding(
                "R3", relpath, t.line, t.col, f.qualified,
                f"allocating call '{t.text}' on the service hot path "
                f"(reachable: {path})", ""))
            i += 1
            continue
        if t.text in ALLOC_ALGOS and nxt == "(":
            findings.append(Finding(
                "R3", relpath, t.line, t.col, f.qualified,
                f"'{t.text}' heap-allocates its merge buffer in libstdc++ "
                f"(the PR 8 std::stable_sort discovery); use an in-place "
                f"alternative over a total order (reachable: {path})", ""))
            i += 1
            continue
        # Local owning-container declaration: std :: <container> < ... > name
        prev = toks[i - 1].text if i > lo else "{"
        if t.text == "std" and nxt == "::" and i + 2 < hi and \
                toks[i + 2].text in OWNING_CONTAINERS and \
                prev in (";", "{", "}", "(", ","):
            if prev == "(":
                i += 1  # parameter or cast, not a local
                continue
            if toks[i - 1].text == "static" or \
                    (i > lo + 1 and toks[i - 2].text == "static"):
                i += 1
                continue
            ty, j = read_type(toks, i, hi)
            tys = type_str(ty)
            if any(x in tys for x in R3_EXEMPT_TYPES):
                i = j
                continue
            if "&" in tys or "*" in tys:
                i = j
                continue
            if j < hi and toks[j].kind == "id" and j + 1 < hi and \
                    toks[j + 1].text in ("=", ";", "{", "("):
                findings.append(Finding(
                    "R3", relpath, t.line, t.col, f.qualified,
                    f"local owning container '{toks[j].text}' "
                    f"({tys.split('<')[0]}) constructed per call on the "
                    f"service hot path (reachable: {path}); hoist to a "
                    f"recycled member or use ScratchVec on the decision "
                    f"Arena", ""))
                i = j + 1
                continue
        i += 1


# --------------------------------------------------------------------------
# R4: frame discipline
# --------------------------------------------------------------------------

def rule_r4(toks, funcs, ann, relpath, findings):
    for f in funcs:
        lo, hi = f.body_start, f.body_end
        has_accept = False
        commits = []
        uncommits = []
        for i in range(lo + 1, hi):
            t = toks[i]
            if t.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < hi else ""
            if t.text in ("accept", "rollback"):
                has_accept = True
            if t.text == "commit_tentative" and nxt == "(" and \
                    f.name != "commit_tentative":
                # `return ...commit_tentative(...)` transfers the token.
                stmt_start = i
                while stmt_start > lo and toks[stmt_start].text not in \
                        (";", "{", "}"):
                    stmt_start -= 1
                returned = any(toks[k].text == "return"
                               for k in range(stmt_start, i))
                if not returned:
                    commits.append(t)
            if t.text == "uncommit" and nxt == "(" and f.name != "uncommit":
                j = i + 1
                depth = 0
                commas = 0
                while j < hi:
                    x = toks[j].text
                    if x in ("(", "[", "{"):
                        depth += 1
                    elif x in (")", "]", "}"):
                        depth -= 1
                        if depth == 0:
                            break
                    elif x == "," and depth == 1:
                        commas += 1
                    j += 1
                if commas == 2:
                    uncommits.append(t)
        for t in commits:
            if has_accept:
                continue
            if ann.suppressed("R4", t.line) or "R4" in f.annotations:
                continue
            findings.append(Finding(
                "R4", relpath, t.line, t.col, f.qualified,
                "commit_tentative() without accept()/rollback() on any path "
                "in this function; every tentative frame must be resolved "
                "in-function or the CommitToken returned to the caller", ""))
        for t in uncommits:
            if ann.suppressed("R4", t.line) or "R4" in f.annotations:
                continue
            findings.append(Finding(
                "R4", relpath, t.line, t.col, f.qualified,
                "legacy uncommit(t, q, p) call; migrate to "
                "commit_tentative() + CommitToken accept()/rollback() "
                "(the checked wrapper is for pre-token callers only)", ""))


# --------------------------------------------------------------------------
# Optional libclang type oracle (engine=libclang / auto)
# --------------------------------------------------------------------------

class LibclangOracle:
    """Resolves operand atom types exactly via clang.cindex when available.

    Used by R1 to confirm/deny textual classifications: an identifier whose
    canonical declared type (through typedef sugar) spells Time, ProcCount,
    int64_t or `long` (LP64) is tick-domain. The oracle is best-effort: any
    parse failure falls back to the textual classification for that TU.
    """

    TICK_SPELLINGS = re.compile(
        r"\b(Time|ProcCount|int64_t|long)\b")

    def __init__(self, compile_commands_dir):
        import clang.cindex as ci  # noqa: raises ImportError when absent
        self.ci = ci
        self.index = ci.Index.create()
        self.db = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
        self.cache = {}

    def tick_positions(self, path):
        """Returns a set of (line, col) of DeclRefExpr/MemberRefExpr tokens
        with tick-domain canonical types, or None on failure."""
        if path in self.cache:
            return self.cache[path]
        result = None
        try:
            cmds = self.db.getCompileCommands(path)
            args = []
            if cmds:
                args = [a for a in list(cmds[0].arguments)[1:]
                        if a not in ("-c", "-o", path) and
                        not a.endswith(".o")]
            tu = self.index.parse(path, args=args)
            result = set()
            ck = self.ci.CursorKind
            for cur in tu.cursor.walk_preorder():
                if cur.location.file is None or \
                        os.path.abspath(cur.location.file.name) != \
                        os.path.abspath(path):
                    continue
                if cur.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR,
                                ck.CALL_EXPR):
                    spelled = cur.type.spelling or ""
                    canon = cur.type.get_canonical().spelling or ""
                    if self.TICK_SPELLINGS.search(spelled) or \
                            self.TICK_SPELLINGS.search(canon):
                        result.add((cur.location.line, cur.location.column))
        except Exception as exc:  # pragma: no cover - environment dependent
            sys.stderr.write(f"resched-lint: libclang parse failed for "
                             f"{path}: {exc}; textual fallback\n")
            result = None
        self.cache[path] = result
        return result


def make_oracle(engine, compile_commands):
    if engine == "textual":
        return None, "textual"
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        if engine == "libclang":
            sys.stderr.write(
                "resched-lint: --engine libclang requested but clang.cindex "
                "is not importable; install python3-clang + libclang. "
                "Falling back to the textual engine.\n")
        return None, "textual"
    if not compile_commands:
        if engine == "libclang":
            sys.stderr.write("resched-lint: libclang engine needs "
                             "--compile-commands; textual fallback\n")
        return None, "textual"
    try:
        oracle = LibclangOracle(os.path.dirname(
            os.path.abspath(compile_commands)))
        return oracle, "libclang"
    except Exception as exc:  # pragma: no cover
        sys.stderr.write(f"resched-lint: libclang unavailable ({exc}); "
                         f"textual fallback\n")
        return None, "textual"


# --------------------------------------------------------------------------
# Analysis driver
# --------------------------------------------------------------------------

def discover_files(repo_root, compile_commands, explicit):
    if explicit:
        return [os.path.abspath(p) for p in explicit]
    files = set()
    if compile_commands and os.path.exists(compile_commands):
        try:
            for entry in json.load(open(compile_commands)):
                p = entry.get("file", "")
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", ""), p)
                p = os.path.abspath(p)
                if p.startswith(os.path.join(repo_root, "src") + os.sep):
                    files.add(p)
        except (ValueError, OSError) as exc:
            sys.stderr.write(f"resched-lint: bad compile_commands "
                             f"({exc}); globbing src/ instead\n")
    for pat in ("src/**/*.hpp", "src/**/*.cpp"):
        for p in glob.glob(os.path.join(repo_root, pat), recursive=True):
            files.add(os.path.abspath(p))
    return sorted(files)


def analyze(repo_root, files, rules, oracle=None):
    file_tokens = {}
    file_lines = {}
    ann_by_file = {}
    funcs_by_file = {}
    symbols = Symbols()
    problems = []

    for path in files:
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        try:
            text = open(path, encoding="utf-8", errors="replace").read()
        except OSError as exc:
            problems.append((rel, 0, f"cannot read: {exc}"))
            continue
        toks, comments, _pp = tokenize(text)
        file_tokens[rel] = toks
        file_lines[rel] = text.splitlines()
        code_lines = sorted({t.line for t in toks})
        ann = AnnotationSet(comments, code_lines)
        for (line, msg) in ann.problems:
            problems.append((rel, line, msg))
        ann_by_file[rel] = ann

    harvest_aliases(file_tokens, symbols)
    for rel, toks in file_tokens.items():
        harvest_class_members(toks, symbols)

    all_funcs = []
    for rel, toks in file_tokens.items():
        funcs = extract_functions(toks, rel)
        for f in funcs:
            if f.return_type:
                base = f.return_type.replace("const ", "") \
                    .replace("&", "").strip()
                if base in symbols.tick_types:
                    symbols.tick_funcs.add(f.name)
        funcs_by_file[rel] = funcs
        all_funcs.extend(funcs)

    for rel, funcs in funcs_by_file.items():
        toks = file_tokens[rel]
        ann = ann_by_file[rel]
        for f in funcs:
            scan_function_locals(toks, f, symbols)
            # Function-scope annotations directly above the signature.
            for a in ann.function_anns:
                if f.sig_line - 2 <= a.target_line <= \
                        toks[f.body_start].line:
                    f.annotations.add(a.rule)

    findings = []
    for rel, funcs in funcs_by_file.items():
        toks = file_tokens[rel]
        ann = ann_by_file[rel]
        if "R1" in rules:
            oracle_hits = None
            if oracle is not None:
                abs_path = os.path.join(repo_root, rel)
                oracle_hits = oracle.tick_positions(abs_path)
            for f in funcs:
                if oracle_hits is not None:
                    # Exact typing: widen the textual local table with every
                    # identifier libclang resolved to a tick type.
                    for i in range(f.body_start + 1, f.body_end):
                        t = toks[i]
                        if t.kind == "id" and (t.line, t.col) in oracle_hits:
                            f.locals_tick.add(t.text)
                rule_r1(toks, f, symbols, ann, rel, findings)
        if "R2" in rules:
            rule_r2(toks, funcs, symbols, ann, rel, findings)
        if "R4" in rules:
            rule_r4(toks, funcs, ann, rel, findings)
    if "R3" in rules:
        rule_r3(file_tokens, funcs_by_file, all_funcs, ann_by_file, findings)

    return finalize_keys(findings, file_lines), problems


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

def load_baseline(path):
    data = json.load(open(path))
    entries = {e["key"]: e.get("justification", "")
               for e in data.get("entries", [])}
    return entries


def write_baseline(path, findings, old):
    entries = []
    for f in findings:
        just = old.get(f.key, "TODO: justify")
        entries.append({"key": f.key, "rule": f.rule, "file": f.file,
                        "function": f.function, "snippet": f.snippet,
                        "justification": just})
    payload = {
        "comment": "resched-lint accepted findings. Policy: this file may "
                   "only SHRINK -- fix findings and delete their entries. "
                   "Every entry needs a human-written justification; the "
                   "gate rejects 'TODO: justify'.",
        "entries": entries,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")


def apply_baseline(findings, baseline):
    new = [f for f in findings if f.key not in baseline]
    found_keys = {f.key for f in findings}
    stale = sorted(k for k in baseline if k not in found_keys)
    unjustified = sorted(
        k for k, just in baseline.items()
        if k in found_keys and (not just.strip() or
                                just.strip().upper().startswith("TODO")))
    return new, stale, unjustified


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="resched-lint",
        description="Project-invariant static analyzer for resched "
                    "(R1 time-arith, R2 determinism, R3 hot-path "
                    "allocation, R4 frame discipline).")
    ap.add_argument("paths", nargs="*",
                    help="explicit files to analyze (default: src/ tree / "
                         "compile_commands.json)")
    ap.add_argument("--repo-root", default=None)
    ap.add_argument("--compile-commands", default=None,
                    help="build/compile_commands.json (TU discovery + "
                         "libclang engine args)")
    ap.add_argument("--baseline", default=None,
                    help="gate against this baseline file")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline: prune stale entries, add "
                         "new findings as TODO")
    ap.add_argument("--rules", default="R1,R2,R3,R4")
    ap.add_argument("--engine", choices=("auto", "textual", "libclang"),
                    default="auto")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    repo_root = os.path.abspath(args.repo_root) if args.repo_root else \
        os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
    cc = args.compile_commands
    if cc is None:
        guess = os.path.join(repo_root, "build", "compile_commands.json")
        cc = guess if os.path.exists(guess) else None

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for r in rules:
        if r not in RULES:
            ap.error(f"unknown rule {r}")

    oracle, engine = make_oracle(args.engine, cc)
    files = discover_files(repo_root, cc, args.paths)
    if not files:
        sys.stderr.write("resched-lint: no input files\n")
        return 2

    findings, problems = analyze(repo_root, files, rules, oracle)

    if problems:
        for (rel, line, msg) in problems:
            sys.stderr.write(f"{rel}:{line}: annotation error: {msg}\n")
        return 2

    if args.update_baseline:
        if not args.baseline:
            ap.error("--update-baseline needs --baseline")
        old = load_baseline(args.baseline) if \
            os.path.exists(args.baseline) else {}
        write_baseline(args.baseline, findings, old)
        todo = sum(1 for f in findings if
                   old.get(f.key, "TODO: justify").startswith("TODO"))
        print(f"resched-lint: baseline rewritten with {len(findings)} "
              f"entries ({todo} still TODO; the gate rejects those)")
        return 0

    if args.format == "json":
        print(json.dumps({
            "engine": engine,
            "findings": [{
                "rule": f.rule, "file": f.file, "line": f.line,
                "col": f.col, "function": f.function,
                "message": f.message, "key": f.key,
            } for f in findings],
        }, indent=1))
    else:
        if not args.quiet:
            for f in findings:
                print(f"{f.file}:{f.line}:{f.col}: [{f.rule}] {f.message} "
                      f"[in {f.function}]")

    if args.baseline:
        baseline = load_baseline(args.baseline)
        new, stale, unjustified = apply_baseline(findings, baseline)
        ok = True
        if new:
            ok = False
            sys.stderr.write(
                f"\nresched-lint: {len(new)} NEW finding(s) not in the "
                f"baseline (fix them or annotate with a justification):\n")
            for f in new:
                sys.stderr.write(f"  {f.file}:{f.line}: [{f.rule}] "
                                 f"{f.message}\n")
        if stale:
            ok = False
            sys.stderr.write(
                f"\nresched-lint: {len(stale)} STALE baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} -- the finding was "
                f"fixed; delete the entry (the baseline must only "
                f"shrink):\n")
            for k in stale:
                sys.stderr.write(f"  {k}\n")
        if unjustified:
            ok = False
            sys.stderr.write(
                f"\nresched-lint: {len(unjustified)} baseline entr"
                f"{'y' if len(unjustified) == 1 else 'ies'} without a real "
                f"justification:\n")
            for k in unjustified:
                sys.stderr.write(f"  {k}\n")
        if ok:
            print(f"resched-lint [{engine}]: OK -- {len(findings)} "
                  f"finding(s), all baselined with justifications "
                  f"({len(files)} files)")
            return 0
        return 1

    print(f"resched-lint [{engine}]: {len(findings)} finding(s) in "
          f"{len(files)} files")
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main())
