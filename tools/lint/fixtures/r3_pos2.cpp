// R3 positive: allocations one hop below a ServiceLoop dispatch root.
#include <algorithm>
#include <memory>
#include <vector>

struct Decision { int job = 0; };

struct ServiceLoop {
  void dispatch(int now);
};

static void rank_decisions(std::vector<Decision>& pending) {
  auto scratch = std::make_unique<int[]>(pending.size());  // LINT-EXPECT: R3
  (void)scratch;
  std::stable_sort(                                        // LINT-EXPECT: R3
      pending.begin(), pending.end(),
      [](const Decision& a, const Decision& b) { return a.job < b.job; });
}

void ServiceLoop::dispatch(int now) {
  std::vector<Decision> pending;  // LINT-EXPECT: R3
  pending.push_back(Decision{now});
  rank_decisions(pending);
}
