// R1 negative: checked helpers, annotated sites, non-tick locals shadowing
// tick-typed field names, comparisons, and literal-only arithmetic.
#include <cstddef>
#include <cstdint>
#include <string>

using Time = std::int64_t;

extern std::int64_t checked_add(std::int64_t a, std::int64_t b);
extern std::int64_t checked_mul(std::int64_t a, std::int64_t b);

struct Window {
  Time start = 0;
  Time end = 0;
};

Time safe_total(const Window& w, Time pad) {
  return checked_add(checked_add(w.start, w.end), pad);
}

// resched-lint: time-arith-audited(duration is clamped to the horizon) [function]
Time audited_total(const Window& w) {
  return w.end - w.start;
}

Time audited_line(Time a, Time b) {
  // resched-lint: time-arith-audited(callers pass bounded offsets)
  const Time sum = a + b;
  return sum;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();  // shadows the tick-typed field name
  while (end > begin) --end;
  return text.substr(begin, end - begin);
}

bool ordered(const Window& w, Time deadline) {
  return w.start < deadline && w.end >= deadline;  // comparisons are exempt
}

int literals_only() { return 3 * 7 + 1; }
