// R2 positive: iterating unordered containers into deterministic output.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Aggregator {
  std::unordered_map<std::int32_t, std::int64_t> totals;
  std::unordered_set<std::int32_t> members;

  std::vector<std::int32_t> ids_in_hash_order() const {
    std::vector<std::int32_t> out;
    for (const auto& entry : totals) {  // LINT-EXPECT: R2
      out.push_back(entry.first);
    }
    return out;
  }

  std::vector<std::int32_t> keys_in_hash_order() const {
    std::vector<std::int32_t> out;
    for (auto it = members.begin(); it != members.end(); ++it)  // LINT-EXPECT: R2
      out.push_back(*it);
    return out;
  }
};
