// R4 positive: legacy 3-arg uncommit plus an unresolved commit elsewhere.
struct Plan {
  int commit_tentative(int t, int q);
  void uncommit(int t, int q, int p);
};

void legacy_cancel(Plan& plan, int t, int q, int p) {
  plan.uncommit(t, q, p);  // LINT-EXPECT: R4
}

int fire_and_forget(Plan& plan, int t) {
  int token = plan.commit_tentative(t, 1);  // LINT-EXPECT: R4
  (void)token;
  return t;
}
