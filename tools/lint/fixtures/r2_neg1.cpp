// R2 negative: membership-only unordered use, audited telemetry clock,
// and iteration over an ordered container.
#include <chrono>
#include <map>
#include <unordered_set>

struct Catalog {
  std::unordered_set<int> members;

  bool has(int id) const { return members.count(id) > 0; }
  bool lookup(int id) const { return members.find(id) != members.end(); }
};

long telemetry_stamp() {
  // resched-lint: determinism-audited(wall-latency telemetry only)
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

int sum_sorted(const std::map<int, int>& table) {
  int acc = 0;
  for (const auto& kv : table) acc += kv.second;  // ordered: deterministic
  return acc;
}
