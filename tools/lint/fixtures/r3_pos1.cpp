// R3 positive: allocation directly inside a schedule() root.
#include <vector>

struct Plan { int jobs = 0; };

Plan* schedule(int m) {
  std::vector<int> order;   // LINT-EXPECT: R3
  order.push_back(m);
  Plan* plan = new Plan();  // LINT-EXPECT: R3
  plan->jobs = m;
  return plan;
}
