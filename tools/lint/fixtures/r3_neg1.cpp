// R3 negative: exempt scratch views, static (recycled) locals, audited
// warmup allocation, placement new, and allocations in cold functions
// unreachable from the hot-path roots.
#include <new>
#include <span>
#include <vector>

struct Arena {
  unsigned char* slot();
};
struct Decision { int job = 0; };

void cold_report() {
  std::vector<int> rows;  // not reachable from any root
  rows.push_back(1);
}

int schedule(Arena& arena, std::span<const int> jobs) {
  std::span<const int> view = jobs;  // non-owning view, exempt
  static std::vector<int> cache;     // recycled across calls
  // resched-lint: hot-path-alloc-audited(one-time warmup buffer, amortized)
  int* warm = new int[8];
  delete[] warm;
  cache.push_back(static_cast<int>(view.size()));
  Decision* d = new (arena.slot()) Decision{};  // placement new: arena-owned
  return d->job;
}
