// R4 positive: a tentative frame that is never resolved in-function.
struct Plan {
  int commit_tentative(int t, int q);
  void accept(int token);
  void rollback(int token);
};

int leak_frame(Plan& plan, int t, int q) {
  int token = plan.commit_tentative(t, q);  // LINT-EXPECT: R4
  return token == 0 ? 1 : 0;
}
