// R2 positive: entropy sources, wall clocks, and pointer-keyed ordering.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>

struct Widget { int id = 0; };

int jitter() {
  std::random_device rd;                       // LINT-EXPECT: R2
  return static_cast<int>(rd()) + rand();      // LINT-EXPECT: R2
}

long stamp() {
  auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: R2
  return t0.time_since_epoch().count();
}

int rank_by_address(const Widget& w) {
  std::map<const Widget*, int> by_ptr;         // LINT-EXPECT: R2
  by_ptr[&w] = w.id;
  return static_cast<int>(by_ptr.size());
}
