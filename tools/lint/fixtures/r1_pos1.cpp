// R1 positive: raw arithmetic on Time/ProcCount locals and fields.
#include <cstdint>

using Time = std::int64_t;
using ProcCount = std::int64_t;

struct Job {
  Time p = 0;
  Time release = 0;
  ProcCount q = 0;
};

Time finish_time(const Job& job, Time start) {
  return start + job.p;  // LINT-EXPECT: R1
}

Time horizon_of(Time horizon, Time pad) {
  Time h = horizon * 2;       // LINT-EXPECT: R1
  h = h - pad;                // LINT-EXPECT: R1
  return h;
}

ProcCount drain(ProcCount capacity, const Job& job) {
  capacity -= job.q;  // LINT-EXPECT: R1
  return capacity;
}
