// R4 negative: resolved frames, token transfer, and the 2-arg uncommit.
struct Plan {
  int commit_tentative(int t, int q);
  void uncommit(int t, int q);
  void accept(int token);
  void rollback(int token);
};

bool try_place(Plan& plan, int t, int q) {
  int token = plan.commit_tentative(t, q);
  if (token < 0) {
    plan.rollback(token);
    return false;
  }
  plan.accept(token);
  return true;
}

int transfer_token(Plan& plan, int t) {
  return plan.commit_tentative(t, 1);  // token transferred to the caller
}

void cancel(Plan& plan, int t, int q) {
  plan.uncommit(t, q);  // checked wrapper, 2-arg form
}
