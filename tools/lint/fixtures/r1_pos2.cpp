// R1 positive: tick-returning functions, member fields through accessors,
// and arithmetic smuggled through parentheses.
#include <cstdint>

using Time = std::int64_t;

struct Span {
  Time start = 0;
  Time end = 0;
  Time length() const { return end - start; }  // LINT-EXPECT: R1
};

Time total_of(const Span& a, const Span& b) {
  return a.length() + b.length();  // LINT-EXPECT: R1
}

Time scaled(const Span& s, std::int64_t factor) {
  return (s.end - s.start) * factor;  // LINT-EXPECT: R1
}

std::int64_t accumulate_ticks(std::int64_t acc, Time value) {
  acc += value;  // LINT-EXPECT: R1
  return acc;
}
