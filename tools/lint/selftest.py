#!/usr/bin/env python3
"""Self-test for resched-lint: run the analyzer over the fixture corpus and
compare findings against the `// LINT-EXPECT: R<n>` markers embedded in the
fixtures themselves.

Each fixture is analyzed in isolation (its own symbol harvest, its own call
graph) with every rule enabled, so a fixture written for one rule also proves
the other rules stay quiet on it.  A line may expect several rules
(`// LINT-EXPECT: R1, R2`).  Negative fixtures carry no markers and must
produce zero findings.

Exit status: 0 if every fixture matches exactly, 1 otherwise.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import resched_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([R0-9,\s]+?)\s*$")
ALL_RULES = ("R1", "R2", "R3", "R4")


def expected_findings(path):
    expected = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for rule in m.group(1).split(","):
                rule = rule.strip()
                if rule not in ALL_RULES:
                    raise ValueError(
                        f"{path}:{lineno}: bad LINT-EXPECT rule {rule!r}")
                expected.add((rule, lineno))
    return expected


def run_fixture(path):
    """Returns a list of mismatch strings (empty = pass)."""
    expected = expected_findings(path)
    findings, problems = resched_lint.analyze(
        FIXTURES, [path], ALL_RULES, oracle=None)
    errors = []
    for (rel, line, msg) in problems:
        errors.append(f"analysis problem at {rel}:{line}: {msg}")
    actual = {(f.rule, f.line) for f in findings}
    for rule, line in sorted(expected - actual):
        errors.append(f"expected {rule} at line {line}, not reported")
    for rule, line in sorted(actual - expected):
        detail = next(f.message for f in findings
                      if (f.rule, f.line) == (rule, line))
        errors.append(f"unexpected {rule} at line {line}: {detail}")
    return errors


def main():
    fixtures = sorted(
        os.path.join(FIXTURES, name)
        for name in os.listdir(FIXTURES)
        if name.endswith(".cpp"))
    if len(fixtures) < 12:
        print(f"selftest: fixture corpus incomplete "
              f"({len(fixtures)} files, expected >= 12)", file=sys.stderr)
        return 1
    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        errors = run_fixture(path)
        if errors:
            failures += 1
            print(f"FAIL {name}")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {name}")
    if failures:
        print(f"selftest: {failures}/{len(fixtures)} fixtures failed",
              file=sys.stderr)
        return 1
    print(f"selftest: {len(fixtures)} fixtures passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
