// Experiment E9b -- data-structure microbenchmarks.
//
// StepProfile is the single structure under every scheduler; these benches
// pin down the cost of its core operations as the segment count grows.
#include "bench_util.hpp"

#include "core/arena.hpp"
#include "core/profile_allocator.hpp"
#include "core/step_profile.hpp"
#include "util/prng.hpp"

namespace {

using namespace resched;

StepProfile busy_profile(std::int64_t segments, std::uint64_t seed) {
  StepProfile profile(256);
  Prng prng(seed);
  for (std::int64_t i = 0; i < segments; ++i) {
    const Time start = prng.uniform_int(0, 100'000);
    const Time len = prng.uniform_int(1, 500);
    profile.add(start, start + len, prng.uniform_int(-2, 2));
  }
  // Keep it a valid capacity profile.
  if (profile.min_value() < 0) {
    StepProfile lifted(256 - profile.min_value());
    return lifted.plus(profile.minus(StepProfile(256)));
  }
  return profile;
}

void print_tables() {
  benchutil::print_header(
      "StepProfile microbenchmarks (E9)",
      "Core profile operations vs segment count; timings below.");
}

void BM_ProfileAdd(benchmark::State& state) {
  Prng prng(1);
  std::uint64_t allocs = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    StepProfile profile = busy_profile(state.range(0), 2);
    state.ResumeTiming();
    const Time start = prng.uniform_int(0, 100'000);
    const std::uint64_t allocs_begin = alloc_count();
    profile.add(start, start + 200, -1);
    allocs += alloc_count() - allocs_begin;
    ++ops;
    benchmark::DoNotOptimize(profile.segment_count());
  }
  state.counters["allocs_per_op"] =
      ops > 0 ? static_cast<double>(allocs) / static_cast<double>(ops) : 0.0;
}
BENCHMARK(BM_ProfileAdd)->Range(64, 4096);

void BM_ProfileMinIn(benchmark::State& state) {
  const StepProfile profile = busy_profile(state.range(0), 3);
  Prng prng(4);
  for (auto _ : state) {
    const Time start = prng.uniform_int(0, 100'000);
    benchmark::DoNotOptimize(profile.min_in(start, start + 1000));
  }
}
BENCHMARK(BM_ProfileMinIn)->Range(64, 16384);

void BM_ProfileMinInWide(benchmark::State& state) {
  // Windows spanning a quarter of the horizon: the regime where a linear
  // scan visits thousands of segments per query.
  const StepProfile profile = busy_profile(state.range(0), 3);
  Prng prng(4);
  for (auto _ : state) {
    const Time start = prng.uniform_int(0, 75'000);
    benchmark::DoNotOptimize(profile.min_in(start, start + 25'000));
  }
}
BENCHMARK(BM_ProfileMinInWide)->Range(64, 16384);

void BM_ProfileFirstBelow(benchmark::State& state) {
  const StepProfile profile = busy_profile(state.range(0), 3);
  // A threshold at the profile floor forces the worst case: the whole
  // window is searched and nothing is found.
  const std::int64_t floor = profile.min_value();
  Prng prng(11);
  for (auto _ : state) {
    const Time start = prng.uniform_int(0, 100'000);
    benchmark::DoNotOptimize(profile.first_below(start, start + 50'000, floor));
  }
}
BENCHMARK(BM_ProfileFirstBelow)->Range(64, 16384);

void BM_ProfileIntegral(benchmark::State& state) {
  // Whole-horizon window: the regime where the pre-sum-index scan visited
  // every segment (the /16384 profile holds ~22k of them).
  const StepProfile profile = busy_profile(state.range(0), 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(profile.integral(0, 100'000));
}
BENCHMARK(BM_ProfileIntegral)->Range(64, 16384);

void BM_TimeToAccumulate(benchmark::State& state) {
  // Target sized to ~3/4 of the horizon's area, so the lower-bound style
  // query (lower_bounds.cpp, bnb.cpp) has to cross most of the profile
  // before finding its answer.
  const StepProfile profile = busy_profile(state.range(0), 5);
  const std::int64_t target = profile.integral(0, 100'000) * 3 / 4;
  Prng prng(13);
  for (auto _ : state) {
    const Time from = prng.uniform_int(0, 10'000);
    benchmark::DoNotOptimize(profile.time_to_accumulate(from, target));
  }
}
BENCHMARK(BM_TimeToAccumulate)->Range(64, 16384);

void BM_EarliestFit(benchmark::State& state) {
  FreeProfile free(busy_profile(state.range(0), 6));
  Prng prng(7);
  for (auto _ : state) {
    const ProcCount q = prng.uniform_int(1, 200);
    benchmark::DoNotOptimize(free.earliest_fit(0, q, 300));
  }
}
BENCHMARK(BM_EarliestFit)->Range(64, 16384);

void BM_BackfillChurn(benchmark::State& state) {
  // EASY-phase-2-shaped tentative probe loop: commit a candidate, run a
  // wide windowed probe (the head's reservation check), revert. The undo
  // log reverts in O(touched) and keeps the index snapshot warm -- the
  // index_rebuilds counter stays at the single warm-up build no matter how
  // many probes run. Structure mirrors BM_BackfillChurnLegacy exactly
  // (same prng, same skip decisions), so the delta is the pair mechanism.
  FreeProfile free(busy_profile(state.range(0), 6));
  benchmark::DoNotOptimize(free.profile().min_in(0, 100'000));  // warm index
  Prng prng(21);
  std::uint64_t allocs = 0;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    const Time t = prng.uniform_int(0, 50'000);
    const ProcCount q = prng.uniform_int(1, 64);
    if (!free.fits_at(t, q, 300)) continue;
    const std::uint64_t allocs_begin = alloc_count();
    FreeProfile::CommitToken token = free.commit_tentative(t, q, 300);
    benchmark::DoNotOptimize(free.profile().min_in(0, 100'000));
    free.rollback(std::move(token));
    allocs += alloc_count() - allocs_begin;
    ++probes;
  }
  state.counters["index_rebuilds"] =
      static_cast<double>(free.profile().index_build_count());
  // Steady-state commit/probe/rollback cycles should be allocation-free:
  // undo frames come from the spare pool, segment edits reuse capacity.
  state.counters["allocs_per_probe"] =
      probes > 0 ? static_cast<double>(allocs) / static_cast<double>(probes)
                 : 0.0;
}
BENCHMARK(BM_BackfillChurn)->Range(64, 4096);

void BM_BackfillChurnLegacy(benchmark::State& state) {
  // The pre-undo-log pair: uncommit re-runs add's probe/split/coalesce and
  // each half drains one index-rebuild budget unit, so sustained probing
  // forces a full O(s) rebuild every ~s/2 pairs (watch index_rebuilds).
  StepProfile profile = busy_profile(state.range(0), 6);
  benchmark::DoNotOptimize(profile.min_in(0, 100'000));  // warm index
  Prng prng(21);
  for (auto _ : state) {
    const Time t = prng.uniform_int(0, 50'000);
    const ProcCount q = prng.uniform_int(1, 64);
    if (profile.first_below(t, t + 300, q) != kTimeInfinity) continue;
    profile.add(t, t + 300, -q);
    benchmark::DoNotOptimize(profile.min_in(0, 100'000));
    profile.add(t, t + 300, q);
  }
  state.counters["index_rebuilds"] =
      static_cast<double>(profile.index_build_count());
}
BENCHMARK(BM_BackfillChurnLegacy)->Range(64, 4096);

void BM_ProfilePlus(benchmark::State& state) {
  const StepProfile a = busy_profile(state.range(0), 8);
  const StepProfile b = busy_profile(state.range(0), 9);
  for (auto _ : state) benchmark::DoNotOptimize(a.plus(b).segment_count());
}
BENCHMARK(BM_ProfilePlus)->Range(64, 4096);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_profile_ops.json")
