// Experiment E6 -- priority-rule ablation (the paper's conclusion:
// "an immediate but not trivial perspective is to study some variants of
// list scheduling ... for instance adding a priority based on sorting the
// jobs by decreasing durations").
//
// Three views: random workloads (mean ratio per order), the Graham-tight
// family (where the submission order is adversarial and LPT is optimal),
// and the Prop. 2 family (same story under reservations). Shelf packing
// (the other conclusion direction) rides along as a packing baseline.
#include "bench_util.hpp"

#include "algorithms/list_order.hpp"
#include "algorithms/lsrc.hpp"
#include "algorithms/portfolio.hpp"
#include "algorithms/shelf.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/adversarial.hpp"
#include "generators/workload.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "Priority ablation (conclusion's future work)",
      "Mean / max LSRC ratio vs certified lower bound per list order, over "
      "20 random\nworkloads (n = 80, m = 32), plus the shelf baselines.");

  Table random_table({"order / algorithm", "mean ratio", "max ratio"});
  auto run_order = [&](ListOrder order) {
    OnlineStats stats;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      WorkloadConfig config;
      config.n = 80;
      config.m = 32;
      config.p_max = 60;
      const Instance instance = random_workload(config, seed * 101);
      const Schedule schedule =
          LsrcScheduler(order, seed).schedule(instance).value();
      stats.add(static_cast<double>(schedule.makespan(instance)) /
                static_cast<double>(makespan_lower_bound(instance)));
    }
    random_table.add("lsrc[" + to_string(order) + "]",
                     format_double(stats.mean(), 4),
                     format_double(stats.max(), 4));
  };
  for (const ListOrder order : all_list_orders()) run_order(order);
  for (const ShelfPolicy policy :
       {ShelfPolicy::kFirstFit, ShelfPolicy::kNextFit}) {
    OnlineStats stats;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      WorkloadConfig config;
      config.n = 80;
      config.m = 32;
      config.p_max = 60;
      const Instance instance = random_workload(config, seed * 101);
      const Schedule schedule = ShelfScheduler(policy).schedule(instance).value();
      stats.add(static_cast<double>(schedule.makespan(instance)) /
                static_cast<double>(makespan_lower_bound(instance)));
    }
    random_table.add(ShelfScheduler(policy).name(),
                     format_double(stats.mean(), 4),
                     format_double(stats.max(), 4));
  }
  // Order-searching schedulers (library extensions on the same question).
  for (const bool use_local_search : {false, true}) {
    OnlineStats stats;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      WorkloadConfig config;
      config.n = 80;
      config.m = 32;
      config.p_max = 60;
      const Instance instance = random_workload(config, seed * 101);
      const Schedule schedule =
          use_local_search
              ? LocalSearchScheduler(100, ListOrder::kLpt, seed)
                    .schedule(instance).value()
              : PortfolioScheduler(2, seed).schedule(instance).value();
      stats.add(static_cast<double>(schedule.makespan(instance)) /
                static_cast<double>(makespan_lower_bound(instance)));
    }
    random_table.add(use_local_search ? "local-search(lpt,100)" : "portfolio",
                     format_double(stats.mean(), 4),
                     format_double(stats.max(), 4));
  }
  benchutil::print_table(random_table);

  benchutil::print_header(
      "Order sensitivity on the worst-case families",
      "Submission order realises the analytic worst case; LPT defuses both "
      "families.");
  Table families({"family", "C*", "C_LSRC[submission]", "ratio",
                  "analytic bound", "C_LSRC[lpt]"});
  for (const ProcCount m : {4, 8, 16}) {
    const GrahamTightFamily family = graham_tight_instance(m);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    const Schedule lpt =
        LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
    families.add("graham-tight m=" + std::to_string(m),
                 family.optimal_makespan, bad.makespan(family.instance),
                 makespan_ratio(bad.makespan(family.instance),
                                family.optimal_makespan),
                 graham_bound(m), lpt.makespan(family.instance));
  }
  for (const std::int64_t k : {4, 6, 8}) {
    const Prop2Family family = prop2_instance(k);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    const Schedule lpt =
        LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
    families.add("prop2 k=" + std::to_string(k), family.optimal_makespan,
                 bad.makespan(family.instance),
                 makespan_ratio(bad.makespan(family.instance),
                                family.optimal_makespan),
                 prop2_ratio_for_k(k), lpt.makespan(family.instance));
  }
  benchutil::print_table(families);
}

void BM_OrderedLsrc(benchmark::State& state) {
  WorkloadConfig config;
  config.n = 200;
  config.m = 32;
  const Instance instance = random_workload(config, 4242);
  const auto order = all_list_orders()[static_cast<std::size_t>(
      state.range(0))];
  for (auto _ : state) {
    const Schedule schedule = LsrcScheduler(order, 1).schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
  state.SetLabel(to_string(order));
}
BENCHMARK(BM_OrderedLsrc)->DenseRange(0, 7);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_priority_ablation.json")
