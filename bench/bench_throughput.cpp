// Experiment E9a -- scheduler cost ("low complexity" claim of section 1.1).
//
// Wall-clock cost of every scheduler as the job count grows, on rigid and
// reserved workloads. google-benchmark's complexity fitting reports the
// empirical growth order.
#include "bench_util.hpp"

#include "algorithms/scheduler.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace {

using namespace resched;

Instance workload(std::int64_t n, bool reserved) {
  WorkloadConfig config;
  config.n = static_cast<std::size_t>(n);
  config.m = 128;
  config.alpha = Rational(1, 2);
  config.p_max = 500;
  Instance instance = random_workload(config, 31337);
  if (reserved) {
    AlphaReservationConfig resa;
    resa.alpha = Rational(1, 2);
    resa.count = 12;
    resa.horizon = 2000;
    resa.max_duration = 300;
    instance = with_alpha_restricted_reservations(instance, resa, 4242);
  }
  return instance;
}

void print_tables() {
  benchutil::print_header(
      "Scheduler throughput (engineering companion E9)",
      "Timing section below: per-schedule cost for each algorithm, "
      "n = 128..4096 jobs,\nm = 128, with and without reservations. "
      "Complexity fits printed by google-benchmark.");
}

void BM_Scheduler(benchmark::State& state, const std::string& name,
                  bool reserved) {
  const Instance instance = workload(state.range(0), reserved);
  const auto scheduler = make_scheduler(name);
  for (auto _ : state) {
    const Schedule schedule = scheduler->schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
  state.SetComplexityN(state.range(0));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsRate);
}

#define RESCHED_THROUGHPUT_BENCH(name, reserved)                          \
  BENCHMARK_CAPTURE(BM_Scheduler, name##_reserved_##reserved, #name,      \
                    reserved)                                             \
      ->RangeMultiplier(4)                                                \
      ->Range(128, 4096)                                                  \
      ->Complexity()

RESCHED_THROUGHPUT_BENCH(lsrc, false);
RESCHED_THROUGHPUT_BENCH(lsrc, true);
RESCHED_THROUGHPUT_BENCH(fcfs, false);
RESCHED_THROUGHPUT_BENCH(fcfs, true);
RESCHED_THROUGHPUT_BENCH(conservative, false);
RESCHED_THROUGHPUT_BENCH(conservative, true);
RESCHED_THROUGHPUT_BENCH(easy, false);
RESCHED_THROUGHPUT_BENCH(easy, true);

void BM_ShelfFf(benchmark::State& state) {
  const Instance instance = workload(state.range(0), false);
  const auto scheduler = make_scheduler("shelf-ff");
  for (auto _ : state) {
    const Schedule schedule = scheduler->schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ShelfFf)->RangeMultiplier(4)->Range(128, 4096)->Complexity();

void BM_LowerBound(benchmark::State& state) {
  const Instance instance = workload(state.range(0), true);
  for (auto _ : state)
    benchmark::DoNotOptimize(makespan_lower_bound(instance));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LowerBound)->RangeMultiplier(4)->Range(128, 4096)->Complexity();

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_throughput.json")
