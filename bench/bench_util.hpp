// Shared helpers for the benchmark binaries.
//
// Every binary follows the same shape: main() prints the paper-figure
// reproduction table(s) on stdout, then hands over to google-benchmark for
// the timing section. The tables are what EXPERIMENTS.md quotes.
//
// Machine-readable perf trajectory: every binary declares a JSON artifact
// name (RESCHED_BENCH_MAIN's second argument, e.g. "BENCH_profile.json").
// When the RESCHED_BENCH_JSON environment variable is set to a directory
// (use "." for the cwd) and the caller did not pass --benchmark_out
// themselves, the run is mirrored there through google-benchmark's JSON
// reporter, so CI can archive BENCH_*.json across PRs and diff the numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace resched::benchutil {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

inline void print_table(const Table& table) {
  std::cout << table.to_string() << "\n";
}

// Standard main body: tables first, then timings (optionally mirrored to
// $RESCHED_BENCH_JSON/<json_name> as google-benchmark JSON).
inline int bench_main(int argc, char** argv, void (*print_tables)(),
                      const char* json_name) {
  print_tables();
  std::vector<char*> args(argv, argv + argc);
  bool explicit_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0)
      explicit_out = true;
  // Storage must outlive Initialize(); keep the flag strings here.
  std::string out_flag;
  std::string format_flag;
  const char* json_dir = std::getenv("RESCHED_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0' && !explicit_out) {
    out_flag = std::string("--benchmark_out=") + json_dir + "/" + json_name;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&effective_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(effective_argc, args.data()))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

#define RESCHED_BENCH_MAIN(print_tables_fn, json_name)                     \
  int main(int argc, char** argv) {                                        \
    return ::resched::benchutil::bench_main(argc, argv, print_tables_fn,   \
                                            json_name);                    \
  }

}  // namespace resched::benchutil
