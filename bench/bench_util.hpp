// Shared helpers for the benchmark binaries.
//
// Every binary follows the same shape: main() prints the paper-figure
// reproduction table(s) on stdout, then hands over to google-benchmark for
// the timing section. The tables are what EXPERIMENTS.md quotes.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "util/table.hpp"

namespace resched::benchutil {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

inline void print_table(const Table& table) {
  std::cout << table.to_string() << "\n";
}

// Standard main body: tables first, then timings.
#define RESCHED_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                               \
    print_tables_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
      return 1;                                                   \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }

}  // namespace resched::benchutil
