// Saturation curves for the open-loop service harness.
//
// The table section runs a small fixed-seed rate sweep per scheduler and
// prints sustained throughput plus the saturation knee -- the per-PR
// "heavy traffic" curve the ROADMAP north star asks for. The benchmark
// section times single service steps below and above the knee, on both
// planning paths (incremental suffix repair vs per-decision scratch
// rebuild) and under churn, and exports the sustained rate, decision
// counts, decision-latency p99 and the incremental-path counters
// (suffix length replanned, snapshots reused, frames rewound) so
// BENCH_service.json tracks harness cost, scheduler capacity and the
// incremental speedup across PRs.
#include <benchmark/benchmark.h>

#include "algorithms/scheduler.hpp"
#include "bench_util.hpp"
#include "sim/service_sim.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

constexpr std::uint64_t kSeed = 42;

LoadGenConfig bench_load() {
  LoadGenConfig load;
  load.m = 32;
  load.p_min = 1;
  load.p_max = 30;
  load.alpha = Rational(1, 2);
  return load;
}

ServiceConfig bench_config() {
  ServiceConfig config;
  config.phases = ServicePhases{50, 250, 50};
  config.dispatch_window = 64;
  config.bail_queue_depth = 2000;
  return config;
}

void print_tables() {
  benchutil::print_header(
      "Service saturation sweep",
      "Open-loop stepped-rate service (m = 32, phases 50/250/50, seed 42): "
      "sustained jobs/kilotick per offered rate and the saturation knee -- "
      "the first step whose queue growth diverges.");
  for (const char* name : {"easy", "conservative", "fcfs"}) {
    const auto scheduler = make_scheduler(name);
    const ServiceSweepResult sweep = run_service_sweep(
        *scheduler, bench_load(), kSeed, 100.0, 700.0, bench_config());
    Table table({"rate/kt", "done", "wait p99", "q peak", "sustained",
                 "saturated"});
    for (const ServiceStepResult& step : sweep.steps)
      table.add(format_double(step.offered_rate, 0), step.completed,
                step.wait_ticks.count() > 0
                    ? std::to_string(step.wait_ticks.percentile(0.99))
                    : std::string("-"),
                step.peak_queue_depth,
                format_double(step.sustained_rate, 1),
                step.saturated ? "yes" : "no");
    std::cout << "--- " << name << " ---\n";
    benchutil::print_table(table);
    std::cout << (sweep.has_knee()
                      ? "knee: " + format_double(sweep.knee_rate(), 0) +
                            " jobs/kilotick\n\n"
                      : std::string("knee: none up to 700 jobs/kilotick\n\n"));
  }
}

// One full service step at a fixed offered rate; counters export the
// deterministic aggregates next to the wall-clock timing. `incremental`
// selects the planning path (suffix repair on the persistent profile vs
// per-decision scratch rebuild) and `churn_rate` enables the deterministic
// churn stream.
void BM_ServiceStep(benchmark::State& state, const char* scheduler_name,
                    double rate, bool incremental, double churn_rate) {
  const auto scheduler = make_scheduler(scheduler_name);
  const LoadGenConfig load = bench_load();
  ServiceConfig config = bench_config();
  config.incremental = incremental;
  config.churn.events_per_kilotick = churn_rate;
  ServiceStepResult last;
  // The simulation is deterministic per iteration; only the wall-clock
  // decision latencies vary. Track the minimum p99 across iterations so
  // the exported figure reflects the path's cost, not scheduler noise on
  // the bench host (both planning paths get identical treatment).
  double best_p99 = 0.0;
  for (auto _ : state) {
    last = run_service_step(*scheduler, load, kSeed, rate, config);
    benchmark::DoNotOptimize(last.completed);
    if (last.decision_ns.count() > 0) {
      const double p99 =
          static_cast<double>(last.decision_ns.percentile(0.99));
      if (best_p99 == 0.0 || p99 < best_p99) best_p99 = p99;
    }
  }
  state.counters["sustained_per_kt"] = last.sustained_rate;
  state.counters["decisions"] = static_cast<double>(last.decisions);
  state.counters["decisions_incremental"] =
      static_cast<double>(last.decisions_incremental);
  state.counters["decisions_scratch"] =
      static_cast<double>(last.decisions_scratch);
  state.counters["snapshots_reused"] =
      static_cast<double>(last.snapshots_reused);
  state.counters["suffix_jobs_replanned"] =
      static_cast<double>(last.suffix_jobs_replanned);
  state.counters["plan_frames_rewound"] =
      static_cast<double>(last.plan_frames_rewound);
  state.counters["history_compactions"] =
      static_cast<double>(last.history_compactions);
  // Heap allocations per measure-window decision (global operator-new hook
  // plus the library's instrumented malloc sites). Deterministic; gated by
  // bench/alloc_budget.json in CI. Steady-state incremental paths target 0.
  state.counters["allocs_per_decision"] =
      last.decisions_measured > 0
          ? static_cast<double>(last.decision_allocs) /
                static_cast<double>(last.decisions_measured)
          : 0.0;
  state.counters["churn_events"] = static_cast<double>(last.churn_events);
  state.counters["canceled"] = static_cast<double>(last.canceled);
  state.counters["saturated"] = last.saturated ? 1.0 : 0.0;
  if (best_p99 > 0.0) state.counters["decision_p99_ns"] = best_p99;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(last.completed));
}

// Whole sweep incl. knee detection; knee_rate_per_kt is the tracked curve.
void BM_ServiceKnee(benchmark::State& state, const char* scheduler_name) {
  const auto scheduler = make_scheduler(scheduler_name);
  const LoadGenConfig load = bench_load();
  const ServiceConfig config = bench_config();
  ServiceSweepResult sweep;
  for (auto _ : state) {
    sweep = run_service_sweep(*scheduler, load, kSeed, 100.0, 700.0, config);
    benchmark::DoNotOptimize(sweep.knee_index);
  }
  state.counters["knee_rate_per_kt"] =
      sweep.has_knee() ? sweep.knee_rate() : 0.0;
}

// Incremental-vs-scratch pairs: same seed, same rate, only the planning
// path differs, so the wall-clock ratio and decision_p99_ns deltas are the
// incremental speedup.
BENCHMARK_CAPTURE(BM_ServiceStep, easy_subsat, "easy", 200.0, true, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, easy_subsat_scratch, "easy", 200.0, false,
                  0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, easy_saturated, "easy", 700.0, true, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, easy_saturated_scratch, "easy", 700.0,
                  false, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, conservative_subsat, "conservative", 200.0,
                  true, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, conservative_subsat_scratch, "conservative",
                  200.0, false, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, conservative_saturated, "conservative",
                  700.0, true, 0.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, conservative_saturated_scratch,
                  "conservative", 700.0, false, 0.0)
    ->Unit(benchmark::kMillisecond);
// Churn-heavy step: cancellations, availability drops and window moves at
// 30 events/kilotick on the incremental path.
BENCHMARK_CAPTURE(BM_ServiceStep, easy_churn, "easy", 300.0, true, 30.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceStep, conservative_churn, "conservative", 300.0,
                  true, 30.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceKnee, easy, "easy")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceKnee, conservative, "conservative")
    ->Unit(benchmark::kMillisecond);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_service.json")
