// Experiment E2 -- Figure 2 / Proposition 1 (non-increasing reservations).
//
// Random staircase availabilities: LSRC stays within the refined bound
// 2 - 1/m(C*) of the exact optimum (small instances) and is never caught
// violating the weak 2 - 1/m form on large ones. The second table replays
// the proof's transformation I -> I'' (reservations become head-of-list
// jobs, Figure 2 right) and confirms the LSRC schedule is bitwise identical
// on the original jobs.
#include "bench_util.hpp"

#include "algorithms/lsrc.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/availability.hpp"
#include "exact/bnb.hpp"
#include "generators/reservations.hpp"
#include "generators/transform.hpp"
#include "generators/workload.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

Instance staircase_instance(std::uint64_t seed, std::size_t n, ProcCount m) {
  WorkloadConfig config;
  config.n = n;
  config.m = m;
  config.p_max = 12;
  const Instance base = random_workload(config, seed);
  StaircaseConfig stairs;
  stairs.steps = 4;
  stairs.max_initial = m / 2;
  stairs.max_step_duration = 15;
  return with_nonincreasing_reservations(base, stairs, seed + 9000);
}

void print_tables() {
  benchutil::print_header(
      "Figure 2 / Proposition 1 (non-increasing reservations)",
      "Small instances: ratio vs exact optimum never exceeds 2 - 1/m(C*).");

  Table small({"seed", "n", "m", "C*", "m(C*)", "bound 2-1/m(C*)",
               "C_LSRC", "ratio", "within?"});
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const Instance instance = staircase_instance(seed, 6, 6);
    const Time optimum = optimal_makespan(instance);
    const ProcCount m_at = availability_at(instance, optimum);
    const Rational bound = nonincreasing_bound(m_at);
    const Schedule schedule = LsrcScheduler().schedule(instance).value();
    const Rational ratio =
        makespan_ratio(schedule.makespan(instance), optimum);
    small.add(seed, instance.n(), instance.m(), optimum, m_at, bound,
              schedule.makespan(instance), ratio,
              ratio <= bound ? "yes" : "NO");
  }
  benchutil::print_table(small);

  Table large({"seed", "n", "m", "LB", "C_LSRC", "ratio vs LB",
               "weak bound 2-1/m"});
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const Instance instance = staircase_instance(seed, 120, 32);
    const Time lb = makespan_lower_bound(instance);
    const Schedule schedule = LsrcScheduler().schedule(instance).value();
    large.add(seed, instance.n(), instance.m(), lb,
              schedule.makespan(instance),
              format_double(static_cast<double>(schedule.makespan(instance)) /
                                static_cast<double>(lb),
                            4),
              graham_bound(instance.m()));
  }
  benchutil::print_table(large);

  benchutil::print_header(
      "Transformation I -> I'' (reservations as head-of-list jobs)",
      "The proof's hinge: LSRC gives identical start times on I and I''.");
  Table transform_table({"seed", "reservations", "head jobs",
                         "C_LSRC(I)", "C_LSRC(I'' orig jobs)", "identical?"});
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Instance instance = staircase_instance(seed, 40, 16);
    const Schedule direct = LsrcScheduler().schedule(instance).value();
    const HeadJobTransform transform = reservations_to_head_jobs(instance);
    const Schedule indirect =
        LsrcScheduler(transform.head_first_list).schedule(transform.rigid).value();
    bool identical = true;
    Time indirect_makespan = 0;
    for (const Job& job : instance.jobs()) {
      const JobId mapped =
          transform.job_map[static_cast<std::size_t>(job.id)];
      identical &= indirect.start(mapped) == direct.start(job.id);
      indirect_makespan =
          std::max(indirect_makespan, indirect.start(mapped) + job.p);
    }
    transform_table.add(seed, instance.n_reservations(),
                        transform.head_ids.size(),
                        direct.makespan(instance), indirect_makespan,
                        identical ? "yes" : "NO");
  }
  benchutil::print_table(transform_table);
}

void BM_LsrcOnStaircase(benchmark::State& state) {
  const Instance instance = staircase_instance(
      42, static_cast<std::size_t>(state.range(0)), 32);
  for (auto _ : state) {
    const Schedule schedule = LsrcScheduler().schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsrcOnStaircase)->Range(16, 1024)->Complexity();

void BM_HeadJobTransform(benchmark::State& state) {
  const Instance instance = staircase_instance(
      43, static_cast<std::size_t>(state.range(0)), 32);
  for (auto _ : state) {
    const HeadJobTransform transform = reservations_to_head_jobs(instance);
    benchmark::DoNotOptimize(transform.rigid.n());
  }
}
BENCHMARK(BM_HeadJobTransform)->Arg(64)->Arg(512);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_fig2_nonincreasing.json")
