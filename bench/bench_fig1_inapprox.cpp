// Experiment E1 -- Figure 1 / Theorem 1 (inapproximability).
//
// Builds the 3-PARTITION -> RESASCHEDULING (m = 1) reduction for growing
// presumed guarantees rho. On YES instances the optimum is k(B+1)-1, but the
// greedy heuristics miss the exact packing, overshoot the huge final
// reservation, and land at ratio > rho -- demonstrating that *no* fixed rho
// can be a guarantee when reservations are unrestricted. A second table
// shows the n' = 1 variant (one full-width gap reservation after the target
// makespan).
#include "bench_util.hpp"

#include "algorithms/conservative_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "bounds/lower_bounds.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "Figure 1 / Theorem 1 (inapproximability with unrestricted "
      "reservations)",
      "m = 1 reduction from 3-PARTITION: any heuristic that misses the "
      "packing is pushed\npast the final reservation, so its ratio exceeds "
      "the presumed guarantee rho.");

  Prng prng(2026);
  const std::size_t k = 3;
  const std::int64_t B = 24;
  const ThreePartitionInstance partition =
      random_strict_yes_instance(k, B, prng);
  const ThreePartitionSolution solution = solve_three_partition(partition);

  Table table({"rho", "OPT", "gap threshold", "C_FCFS", "C_CBF",
               "C_LSRC", "worst ratio", "exceeds rho?"});
  for (const std::int64_t rho : {1, 2, 4, 8, 16}) {
    const Theorem1Reduction reduction = theorem1_reduction(partition, rho);
    const Time fcfs =
        FcfsScheduler().schedule(reduction.instance).value().makespan(
            reduction.instance);
    const Time cbf = ConservativeBackfillScheduler()
                         .schedule(reduction.instance).value()
                         .makespan(reduction.instance);
    const Time lsrc =
        LsrcScheduler().schedule(reduction.instance).value().makespan(
            reduction.instance);
    const Time worst = std::max({fcfs, cbf, lsrc});
    const Rational ratio = makespan_ratio(worst, reduction.opt_if_solvable);
    table.add(rho, reduction.opt_if_solvable, reduction.gap_threshold, fcfs,
              cbf, lsrc, ratio, ratio > Rational(rho) ? "yes" : "no");
  }
  benchutil::print_table(table);
  std::cout << "(the constructed optimum from the known partition: "
            << (solution.solvable ? "exists and equals OPT" : "unsolvable")
            << ")\n";

  benchutil::print_header(
      "Theorem 1, n' = 1 variant",
      "One full-width reservation placed right after the rigid optimum "
      "turns the makespan\ndecision into a gap: a wrong order jumps past "
      "the block.");
  const Instance rigid(2, {Job{0, 1, 3, 0, ""}, Job{1, 1, 3, 0, ""},
                           Job{2, 1, 2, 0, ""}, Job{3, 1, 2, 0, ""},
                           Job{4, 1, 2, 0, ""}});
  const Time opt = optimal_makespan(rigid);
  Table table2({"gap length L", "OPT (exact B&B)", "C_LSRC", "LSRC/OPT"});
  for (const Time L : {Time{10}, Time{100}, Time{1000}, Time{10000}}) {
    const Instance gapped = add_gap_reservation(rigid, opt, L);
    const Time exact = optimal_makespan(gapped);
    const Schedule greedy = LsrcScheduler().schedule(gapped).value();
    table2.add(L, exact, greedy.makespan(gapped),
               makespan_ratio(greedy.makespan(gapped), exact));
  }
  benchutil::print_table(table2);
  std::cout << "(the bad/OPT column grows linearly in L: no finite "
               "guarantee survives)\n";
}

void BM_ReductionConstruction(benchmark::State& state) {
  Prng prng(7);
  const ThreePartitionInstance partition = random_strict_yes_instance(
      static_cast<std::size_t>(state.range(0)), 24, prng);
  for (auto _ : state) {
    const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
    benchmark::DoNotOptimize(reduction.instance.n_reservations());
  }
}
BENCHMARK(BM_ReductionConstruction)->Arg(3)->Arg(6)->Arg(12);

void BM_ThreePartitionSolver(benchmark::State& state) {
  Prng prng(11);
  const ThreePartitionInstance partition = random_strict_yes_instance(
      static_cast<std::size_t>(state.range(0)), 40, prng);
  for (auto _ : state) {
    const ThreePartitionSolution solution = solve_three_partition(partition);
    benchmark::DoNotOptimize(solution.solvable);
  }
}
BENCHMARK(BM_ThreePartitionSolver)->Arg(3)->Arg(6)->Arg(9);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_fig1_inapprox.json")
