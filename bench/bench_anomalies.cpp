// Experiment E11 (library extension) -- scheduling anomalies of rigid jobs.
//
// Graham's anomaly phenomenon, rediscovered in the paper's setting: for
// independent RIGID jobs (no precedence constraints at all), "improving" an
// instance -- cancelling a job, a job finishing early, adding a machine --
// can increase the list schedule's makespan. This bench measures how often,
// for each scheduler, across random workloads, and verifies the growth never
// escapes the Theorem 2 envelope (2 - 1/m).
//
// The five-job witness (m = 3): removing one narrow job raises C_LSRC from
// 7 to 8; printed first with its Gantt charts.
#include "bench_util.hpp"

#include "algorithms/scheduler.hpp"
#include "bounds/anomalies.hpp"
#include "bounds/guarantees.hpp"
#include "core/gantt.hpp"
#include "generators/workload.hpp"
#include "sim/service_sim.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

// ---- churn-scenario sweep (ROADMAP item 2 follow-on) -----------------------
//
// The service-level analog of the batch anomalies above: a cancellation only
// removes work, yet the rescheduled tail can WAIT LONGER than under the
// untouched queue -- the open-loop counterpart of Graham's job-removal
// anomaly. The sweep runs the service harness at a fixed sub-saturation rate
// under two churn mixes: "cancel" (cancellations only -- pure improvements,
// so any p99 growth is anomalous in Graham's sense) and "full" (drops and
// window moves too, which genuinely remove capacity and are expected to
// hurt). Fixed seed => deterministic tables.

constexpr std::uint64_t kChurnSeed = 42;

ServiceConfig churn_sweep_config(double rate, bool cancel_only) {
  ServiceConfig config;
  config.phases = ServicePhases{50, 250, 50};
  config.dispatch_window = 64;
  config.bail_queue_depth = 2000;
  config.incremental = true;
  config.record_wall_latency = false;  // fully deterministic step
  config.churn.events_per_kilotick = rate;
  if (cancel_only) {
    config.churn.availability_drop_weight = 0.0;
    config.churn.reservation_move_weight = 0.0;
  }
  return config;
}

LoadGenConfig churn_sweep_load() {
  LoadGenConfig load;
  load.m = 32;
  load.p_min = 1;
  load.p_max = 30;
  load.alpha = Rational(1, 2);
  return load;
}

void print_churn_sweep() {
  benchutil::print_header(
      "Churn-scenario sweep (service-level anomalies)",
      "Open-loop service (m = 32, rate 300/kt, seed 42) under deterministic "
      "churn.\n\"cancel\" mix only withdraws jobs -- a pure improvement, so "
      "wait-p99 growth over\nthe churn-free baseline (column `anomaly`) is "
      "Graham's removal anomaly in the\nonline setting. \"full\" mix adds "
      "availability drops + window moves.");

  const double offered = 300.0;
  Table table({"scheduler", "mix", "churn/kt", "events", "canceled",
               "wait p99", "resp p99", "sustained", "anomaly"});
  for (const char* name : {"easy", "conservative", "fcfs"}) {
    const auto scheduler = make_scheduler(name);
    const ServiceStepResult baseline = run_service_step(
        *scheduler, churn_sweep_load(), kChurnSeed, offered,
        churn_sweep_config(0.0, false));
    const std::int64_t base_wait = baseline.wait_ticks.count() > 0
                                       ? baseline.wait_ticks.percentile(0.99)
                                       : 0;
    table.add(name, "none", 0, 0, 0, base_wait,
              baseline.response_ticks.count() > 0
                  ? baseline.response_ticks.percentile(0.99)
                  : 0,
              format_double(baseline.sustained_rate, 1), "-");
    for (const bool cancel_only : {true, false}) {
      for (const double rate : {10.0, 30.0, 60.0}) {
        const ServiceStepResult step = run_service_step(
            *scheduler, churn_sweep_load(), kChurnSeed, offered,
            churn_sweep_config(rate, cancel_only));
        const std::int64_t wait = step.wait_ticks.count() > 0
                                      ? step.wait_ticks.percentile(0.99)
                                      : 0;
        // Anomalous only under the cancel-only mix: capacity never shrank,
        // yet the tail waits longer than with no churn at all.
        const bool anomalous = cancel_only && wait > base_wait;
        table.add(name, cancel_only ? "cancel" : "full",
                  format_double(rate, 0), step.churn_events, step.canceled,
                  wait,
                  step.response_ticks.count() > 0
                      ? step.response_ticks.percentile(0.99)
                      : 0,
                  format_double(step.sustained_rate, 1),
                  anomalous ? "YES" : "no");
      }
    }
  }
  benchutil::print_table(table);
  std::cout << "(cancel-mix rows marked YES waited longer at p99 than with "
               "no churn, despite\nchurn only ever removing work)\n";
}

void print_tables() {
  benchutil::print_header(
      "Scheduling anomalies of independent rigid jobs (extension E11)",
      "Minimal witness: removing job 1 raises the LSRC makespan 7 -> 8.");

  const Instance witness = removal_anomaly_example();
  const auto lsrc = make_scheduler("lsrc");
  {
    const Schedule before = lsrc->schedule(witness).value();
    const Instance reduced = without_job(witness, 1);
    const Schedule after = lsrc->schedule(reduced).value();
    GanttOptions options;
    options.width = 32;
    std::cout << "with all five jobs (C = "
              << before.makespan(witness) << "):\n"
              << ascii_gantt(witness, before, options) << "\n";
    std::cout << "job 1 removed (C = " << after.makespan(reduced) << "):\n"
              << ascii_gantt(reduced, after, options) << "\n";
  }

  benchutil::print_header(
      "Anomaly frequency across random workloads",
      "100 instances (n = 14, m = 6): share of instances with at least one "
      "anomaly of each\nkind, and the worst observed growth factor "
      "(Theorem 2 caps it at 2 - 1/m = 11/6).");

  Table table({"scheduler", "removal %", "shorter %", "extra-machine %",
               "worst growth", "envelope"});
  for (const char* name : {"lsrc", "lsrc-lpt", "fcfs", "conservative",
                           "easy"}) {
    const auto scheduler = make_scheduler(name);
    int removal = 0;
    int shorter = 0;
    int extra = 0;
    double worst_growth = 1.0;
    const int trials = 100;
    for (int trial = 0; trial < trials; ++trial) {
      WorkloadConfig config;
      config.n = 14;
      config.m = 6;
      config.p_max = 12;
      const Instance instance =
          random_workload(config, static_cast<std::uint64_t>(trial) + 1);
      const AnomalyScan scan = find_anomalies(instance, *scheduler);
      bool saw_removal = false;
      bool saw_shorter = false;
      bool saw_extra = false;
      for (const Anomaly& anomaly : scan.anomalies) {
        worst_growth = std::max(
            worst_growth, static_cast<double>(anomaly.makespan_after) /
                              static_cast<double>(anomaly.makespan_before));
        switch (anomaly.kind) {
          case AnomalyKind::kJobRemoval: saw_removal = true; break;
          case AnomalyKind::kShorterDuration: saw_shorter = true; break;
          case AnomalyKind::kExtraMachine: saw_extra = true; break;
        }
      }
      removal += saw_removal;
      shorter += saw_shorter;
      extra += saw_extra;
    }
    table.add(name, removal, shorter, extra,
              format_double(worst_growth, 4),
              format_double(graham_bound(6).to_double(), 4));
  }
  benchutil::print_table(table);
  std::cout << "(percentages are per-100-instances counts; every growth "
               "factor stays below the envelope)\n";

  print_churn_sweep();
}

// Timed churn-sweep step; exports the deterministic anomaly signal (wait-p99
// ratio vs the churn-free baseline under the cancel-only mix) so the JSON
// tracks it across PRs.
void BM_ChurnAnomaly(benchmark::State& state, const char* scheduler_name,
                     double churn_rate) {
  const auto scheduler = make_scheduler(scheduler_name);
  const ServiceStepResult baseline =
      run_service_step(*scheduler, churn_sweep_load(), kChurnSeed, 300.0,
                       churn_sweep_config(0.0, false));
  ServiceStepResult last;
  for (auto _ : state) {
    last = run_service_step(*scheduler, churn_sweep_load(), kChurnSeed, 300.0,
                            churn_sweep_config(churn_rate, true));
    benchmark::DoNotOptimize(last.completed);
  }
  state.counters["churn_events"] = static_cast<double>(last.churn_events);
  state.counters["canceled"] = static_cast<double>(last.canceled);
  const double base_wait =
      baseline.wait_ticks.count() > 0
          ? static_cast<double>(baseline.wait_ticks.percentile(0.99))
          : 0.0;
  const double wait =
      last.wait_ticks.count() > 0
          ? static_cast<double>(last.wait_ticks.percentile(0.99))
          : 0.0;
  state.counters["wait_p99"] = wait;
  state.counters["wait_p99_vs_baseline"] =
      base_wait > 0.0 ? wait / base_wait : 0.0;
}

BENCHMARK_CAPTURE(BM_ChurnAnomaly, easy_cancel30, "easy", 30.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ChurnAnomaly, conservative_cancel30, "conservative",
                  30.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ChurnAnomaly, fcfs_cancel30, "fcfs", 30.0)
    ->Unit(benchmark::kMillisecond);

void BM_AnomalyScan(benchmark::State& state) {
  WorkloadConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.m = 6;
  const Instance instance = random_workload(config, 99);
  const auto scheduler = make_scheduler("lsrc");
  for (auto _ : state) {
    const AnomalyScan scan = find_anomalies(instance, *scheduler);
    benchmark::DoNotOptimize(scan.anomalies.size());
  }
}
BENCHMARK(BM_AnomalyScan)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_anomalies.json")
