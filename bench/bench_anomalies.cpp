// Experiment E11 (library extension) -- scheduling anomalies of rigid jobs.
//
// Graham's anomaly phenomenon, rediscovered in the paper's setting: for
// independent RIGID jobs (no precedence constraints at all), "improving" an
// instance -- cancelling a job, a job finishing early, adding a machine --
// can increase the list schedule's makespan. This bench measures how often,
// for each scheduler, across random workloads, and verifies the growth never
// escapes the Theorem 2 envelope (2 - 1/m).
//
// The five-job witness (m = 3): removing one narrow job raises C_LSRC from
// 7 to 8; printed first with its Gantt charts.
#include "bench_util.hpp"

#include "algorithms/scheduler.hpp"
#include "bounds/anomalies.hpp"
#include "bounds/guarantees.hpp"
#include "core/gantt.hpp"
#include "generators/workload.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "Scheduling anomalies of independent rigid jobs (extension E11)",
      "Minimal witness: removing job 1 raises the LSRC makespan 7 -> 8.");

  const Instance witness = removal_anomaly_example();
  const auto lsrc = make_scheduler("lsrc");
  {
    const Schedule before = lsrc->schedule(witness).value();
    const Instance reduced = without_job(witness, 1);
    const Schedule after = lsrc->schedule(reduced).value();
    GanttOptions options;
    options.width = 32;
    std::cout << "with all five jobs (C = "
              << before.makespan(witness) << "):\n"
              << ascii_gantt(witness, before, options) << "\n";
    std::cout << "job 1 removed (C = " << after.makespan(reduced) << "):\n"
              << ascii_gantt(reduced, after, options) << "\n";
  }

  benchutil::print_header(
      "Anomaly frequency across random workloads",
      "100 instances (n = 14, m = 6): share of instances with at least one "
      "anomaly of each\nkind, and the worst observed growth factor "
      "(Theorem 2 caps it at 2 - 1/m = 11/6).");

  Table table({"scheduler", "removal %", "shorter %", "extra-machine %",
               "worst growth", "envelope"});
  for (const char* name : {"lsrc", "lsrc-lpt", "fcfs", "conservative",
                           "easy"}) {
    const auto scheduler = make_scheduler(name);
    int removal = 0;
    int shorter = 0;
    int extra = 0;
    double worst_growth = 1.0;
    const int trials = 100;
    for (int trial = 0; trial < trials; ++trial) {
      WorkloadConfig config;
      config.n = 14;
      config.m = 6;
      config.p_max = 12;
      const Instance instance =
          random_workload(config, static_cast<std::uint64_t>(trial) + 1);
      const AnomalyScan scan = find_anomalies(instance, *scheduler);
      bool saw_removal = false;
      bool saw_shorter = false;
      bool saw_extra = false;
      for (const Anomaly& anomaly : scan.anomalies) {
        worst_growth = std::max(
            worst_growth, static_cast<double>(anomaly.makespan_after) /
                              static_cast<double>(anomaly.makespan_before));
        switch (anomaly.kind) {
          case AnomalyKind::kJobRemoval: saw_removal = true; break;
          case AnomalyKind::kShorterDuration: saw_shorter = true; break;
          case AnomalyKind::kExtraMachine: saw_extra = true; break;
        }
      }
      removal += saw_removal;
      shorter += saw_shorter;
      extra += saw_extra;
    }
    table.add(name, removal, shorter, extra,
              format_double(worst_growth, 4),
              format_double(graham_bound(6).to_double(), 4));
  }
  benchutil::print_table(table);
  std::cout << "(percentages are per-100-instances counts; every growth "
               "factor stays below the envelope)\n";
}

void BM_AnomalyScan(benchmark::State& state) {
  WorkloadConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.m = 6;
  const Instance instance = random_workload(config, 99);
  const auto scheduler = make_scheduler("lsrc");
  for (auto _ : state) {
    const AnomalyScan scan = find_anomalies(instance, *scheduler);
    benchmark::DoNotOptimize(scan.anomalies.size());
  }
}
BENCHMARK(BM_AnomalyScan)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_anomalies.json")
