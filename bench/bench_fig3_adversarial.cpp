// Experiment E3 -- Figure 3 / Proposition 2.
//
// Reproduces the paper's adversarial family: for alpha = 2/k, LSRC with the
// bad list order is exactly (2/alpha - 1 + alpha/2) = k - 1 + 1/k times
// optimal. The k = 6 row is the figure printed in the paper (m = 180,
// C* = 6, C_LSRC = 31). An LPT column shows the conclusion's conjecture in
// action: sorting by decreasing durations defuses this family completely.
#include "bench_util.hpp"

#include "algorithms/lsrc.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/adversarial.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "Figure 3 / Proposition 2 (lower bound instances)",
      "LSRC(bad order) achieves ratio exactly 2/alpha - 1 + alpha/2 at "
      "alpha = 2/k;\nthe paper's printed instance is the k = 6 row. "
      "LSRC(LPT) lands on the optimum.");

  Table table({"k", "alpha", "m", "C*", "C_LSRC(bad)", "ratio",
               "predicted 2/a-1+a/2", "upper 2/a", "C_LSRC(lpt)"});
  for (const std::int64_t k : {2, 3, 4, 5, 6, 8, 10, 12}) {
    const Prop2Family family = prop2_instance(k);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    const Schedule lpt =
        LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
    const Rational ratio = makespan_ratio(bad.makespan(family.instance),
                                          family.optimal_makespan);
    table.add(k, Rational(2, k), family.instance.m(),
              family.optimal_makespan, bad.makespan(family.instance),
              ratio, prop2_ratio_for_k(k),
              alpha_upper_bound(Rational(2, k)),
              lpt.makespan(family.instance));
  }
  benchutil::print_table(table);
  std::cout << "(paper check: k = 6 row must read C* = 6, C_LSRC = 31, "
               "ratio 31/6)\n";
}

void BM_Prop2BadOrder(benchmark::State& state) {
  const Prop2Family family = prop2_instance(state.range(0));
  for (auto _ : state) {
    const Schedule schedule =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    benchmark::DoNotOptimize(schedule.makespan(family.instance));
  }
  state.counters["jobs"] = static_cast<double>(family.instance.n());
}
BENCHMARK(BM_Prop2BadOrder)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Prop2InstanceConstruction(benchmark::State& state) {
  for (auto _ : state) {
    const Prop2Family family = prop2_instance(state.range(0));
    benchmark::DoNotOptimize(family.instance.total_work());
  }
}
BENCHMARK(BM_Prop2InstanceConstruction)->Arg(8)->Arg(32);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_fig3_adversarial.json")
