// Experiment E4 -- Figure 4.
//
// The paper's Figure 4 plots three analytic curves over alpha in (0, 1]:
// the 2/alpha upper bound (Prop. 3) and the lower bounds B1 >= B2
// (section 4.2). This binary prints the same series (exact rationals plus
// decimal renderings for plotting) and adds the *achieved* adversarial
// ratios at the constructive points alpha = 2/k, where all three meet the
// measured value.
#include "bench_util.hpp"

#include "algorithms/lsrc.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/adversarial.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "Figure 4 (bounds for LSRC on alpha-RESASCHEDULING)",
      "Upper bound 2/alpha and lower bounds B1 >= B2 as functions of alpha;\n"
      "the curves approach each other near alpha = 2/k.");

  Table curve({"alpha", "B2", "B1", "upper 2/alpha"});
  for (int i = 5; i <= 100; i += 5) {
    const Rational alpha(i, 100);
    curve.add(format_double(alpha.to_double(), 2),
              format_double(lsrc_lower_bound_b2(alpha).to_double(), 4),
              format_double(lsrc_lower_bound_b1(alpha).to_double(), 4),
              format_double(alpha_upper_bound(alpha).to_double(), 4));
  }
  benchutil::print_table(curve);

  Table achieved({"alpha = 2/k", "k", "B2", "B1", "achieved (measured)",
                  "upper 2/alpha"});
  for (const std::int64_t k : {2, 3, 4, 5, 6, 8, 10}) {
    const Rational alpha(2, k);
    const Prop2Family family = prop2_instance(k);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    const Rational ratio = makespan_ratio(bad.makespan(family.instance),
                                          family.optimal_makespan);
    achieved.add(alpha, k, lsrc_lower_bound_b2(alpha),
                 lsrc_lower_bound_b1(alpha), ratio,
                 alpha_upper_bound(alpha));
  }
  benchutil::print_table(achieved);
  std::cout << "(B1 = B2 = achieved at every constructive point: the lower "
               "bound is exact there)\n";
}

void BM_BoundCurveEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    Rational accumulator(0);
    for (int i = 1; i <= 100; ++i) {
      const Rational alpha(i, 100);
      accumulator += lsrc_lower_bound_b1(alpha) + lsrc_lower_bound_b2(alpha);
    }
    benchmark::DoNotOptimize(accumulator);
  }
}
BENCHMARK(BM_BoundCurveEvaluation);

void BM_RationalArithmetic(benchmark::State& state) {
  for (auto _ : state) {
    Rational product(1);
    for (std::int64_t k = 2; k <= 40; ++k)
      product = product * Rational(k, k + 1) + Rational(1, k);
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_RationalArithmetic);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_fig4_bounds.json")
