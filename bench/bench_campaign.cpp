// Experiment E9c -- campaign throughput across thread counts.
//
// run_campaign fans seeded instances across schedulers on a thread pool;
// this bench pins down the scaling of that fan-out (same aggregated table
// for every thread count -- the determinism test asserts it, this measures
// what the parallelism buys).
#include "bench_util.hpp"

#include "algorithms/scheduler.hpp"
#include "core/arena.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace resched;

Instance sweep_instance(std::uint64_t seed) {
  WorkloadConfig workload;
  workload.n = 300;
  workload.m = 64;
  workload.alpha = Rational(1, 2);
  Instance instance = random_workload(workload, seed);
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  resa.count = 10;
  resa.horizon = 2000;
  resa.max_duration = 200;
  return with_alpha_restricted_reservations(instance, resa,
                                            seed ^ 0x9e3779b97f4a7c15ull);
}

void print_tables() {
  benchutil::print_header(
      "Campaign throughput (E9c)",
      "run_campaign over 16 reserved instances x 4 schedulers; "
      "Arg = worker threads.");
}

void BM_Campaign(benchmark::State& state) {
  CampaignConfig config;
  config.instances = 16;
  config.seed = 7;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.schedulers = {"lsrc", "conservative", "easy", "fcfs"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed);
  };
  for (auto _ : state) {
    const CampaignResult result = run_campaign(generator, config);
    benchmark::DoNotOptimize(result.cells.front().makespan.mean());
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(config.instances * config.schedulers.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CampaignShared(benchmark::State& state) {
  // Same workload as BM_Campaign with share_instances on: one generator
  // run per instance index instead of one per (instance, scheduler) task.
  // The saved work is the 3 redundant regenerations per instance; the
  // aggregated table is bit-identical (test_campaign_runner asserts it).
  CampaignConfig config;
  config.instances = 16;
  config.seed = 7;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.schedulers = {"lsrc", "conservative", "easy", "fcfs"};
  config.share_instances = true;
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed);
  };
  for (auto _ : state) {
    const CampaignResult result = run_campaign(generator, config);
    benchmark::DoNotOptimize(result.cells.front().makespan.mean());
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(config.instances * config.schedulers.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CampaignShared)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batch-path allocation cost: one schedule() call over the standard
// campaign instance (n = 300, m = 64, 10 reservations), heap events
// counted by the global alloc hook. The campaign fan-out above is
// thread-pooled (the thread-local counter cannot see the workers), so the
// per-schedule figure is measured here on the calling thread.
void BM_ScheduleAllocs(benchmark::State& state, const char* name) {
  const auto scheduler = make_scheduler(name);
  const Instance instance = sweep_instance(7);
  std::uint64_t allocs = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const std::uint64_t allocs_begin = alloc_count();
    const ScheduleOutcome outcome = scheduler->schedule(instance);
    allocs += alloc_count() - allocs_begin;
    ++runs;
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.counters["allocs_per_schedule"] =
      runs > 0 ? static_cast<double>(allocs) / static_cast<double>(runs)
               : 0.0;
}
BENCHMARK_CAPTURE(BM_ScheduleAllocs, easy, "easy");
BENCHMARK_CAPTURE(BM_ScheduleAllocs, conservative, "conservative");
BENCHMARK_CAPTURE(BM_ScheduleAllocs, fcfs, "fcfs");

Instance tail_instance(std::uint64_t seed) {
  WorkloadConfig workload;
  workload.n = 120;
  workload.m = 48;
  workload.alpha = Rational(1, 2);
  return random_workload(workload, seed);
}

void BM_CampaignTail(benchmark::State& state) {
  // Tail-latency case: local-search is orders of magnitude slower than the
  // constructive schedulers. With per-instance tasks one worker would drag
  // a whole instance's scheduler set; per-(instance, scheduler) tasks let
  // the cheap schedulers drain around the slow ones, so the critical path
  // is a single local-search run instead of a pile-up.
  CampaignConfig config;
  config.instances = 6;
  config.seed = 11;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.schedulers = {"local-search", "fcfs", "conservative", "easy"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return tail_instance(seed);
  };
  for (auto _ : state) {
    const CampaignResult result = run_campaign(generator, config);
    benchmark::DoNotOptimize(result.cells.front().makespan.mean());
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(config.instances * config.schedulers.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CampaignTail)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_campaign.json")
