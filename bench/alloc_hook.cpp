// Global operator new/delete replacement for bench and test binaries.
//
// Routes every residual C++ heap allocation (std containers, std::function
// spills, map nodes -- anything not already on an instrumented malloc path)
// through std::malloc plus resched::note_alloc(), so alloc_count() observes
// the COMPLETE heap traffic of an operation, not just the library's own
// SegStore/Arena sites. Those library sites allocate with std::malloc
// directly and are therefore invisible here: each heap event is counted
// exactly once.
//
// Linked as a CMake OBJECT library into every bench and test executable
// ($<TARGET_OBJECTS:resched_alloc_hook>). It must NOT be part of the
// resched static library: replacement operators belong to the final link,
// and examples/ deliberately ship without the hook. malloc/free stay
// interceptable by ASan/TSan, so the sanitizer jobs keep full leak checking.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "core/arena.hpp"

namespace {

void* hooked_alloc(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) resched::note_alloc(size);
  return p;
}

void* hooked_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0)
    return nullptr;
  resched::note_alloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = hooked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = hooked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = hooked_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = hooked_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return hooked_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return hooked_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
