// Experiment E5 + E10 -- the practical scheduler ladder and the online
// doubling wrapper (paper sections 2.1 and 2.2).
//
// Table 1: the FCFS pathology family (OPT ~ m^2, FCFS ~ m^3): ratio grows
//          linearly with m while conservative backfilling and LSRC stay
//          optimal / near-optimal.
// Table 2: the release-time trap: conservative and EASY protect queue order
//          at bounded cost; strict FCFS serialises (ratio grows with the
//          round count); LSRC starves the wide jobs but stays near the lower
//          bound -- the utilisation-vs-fairness trade-off in numbers
//          (mean waits included).
// Table 3: the Shmoys-Wein-Williamson doubling wrapper on Poisson streams:
//          online makespan <= 2 rho LB.
#include "bench_util.hpp"

#include "algorithms/online_batch.hpp"
#include "algorithms/scheduler.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/adversarial.hpp"
#include "generators/workload.hpp"
#include "sim/metrics.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

void print_tables() {
  benchutil::print_header(
      "FCFS pathology (section 2.2: optimal ~1, FCFS ~m)",
      "fcfs_bad_instance(m): FCFS ratio grows linearly in m; conservative "
      "backfilling\nrestores the optimum on this family.");
  Table fcfs_table({"m", "OPT", "C_FCFS", "FCFS ratio", "C_CBF", "C_LSRC",
                    "LSRC ratio"});
  for (const ProcCount m : {2, 4, 8, 16, 24}) {
    const FcfsBadFamily family = fcfs_bad_instance(m);
    const Time fcfs =
        make_scheduler("fcfs")->schedule(family.instance).value().makespan(
            family.instance);
    const Time cbf = make_scheduler("conservative")
                         ->schedule(family.instance).value()
                         .makespan(family.instance);
    const Time lsrc =
        make_scheduler("lsrc")->schedule(family.instance).value().makespan(
            family.instance);
    fcfs_table.add(
        m, family.optimal_makespan, fcfs,
        format_double(static_cast<double>(fcfs) /
                          static_cast<double>(family.optimal_makespan),
                      3),
        cbf, lsrc,
        format_double(static_cast<double>(lsrc) /
                          static_cast<double>(family.optimal_makespan),
                      3));
  }
  benchutil::print_table(fcfs_table);

  benchutil::print_header(
      "Release-time trap (backfilling aggressiveness ladder)",
      "cbf_trap_instance(k, m=16, T=50): narrow jobs stream in ahead of "
      "full-width ones.\nwait(G) = mean wait of the full-width jobs "
      "(starvation indicator).");
  Table trap({"rounds k", "LB", "algorithm", "C_max", "ratio vs LB",
              "mean wait", "wait(G jobs)"});
  for (const std::int64_t k : {4, 8, 16}) {
    const Instance instance = cbf_trap_instance(k, 16, 50);
    const Time lb = makespan_lower_bound(instance);
    for (const char* name : {"fcfs", "conservative", "easy", "lsrc"}) {
      const Schedule schedule = make_scheduler(name)->schedule(instance).value();
      const ScheduleMetrics metrics = compute_metrics(instance, schedule);
      double g_wait = 0.0;
      for (const Job& job : instance.jobs())
        if (job.q == instance.m())
          g_wait += static_cast<double>(schedule.start(job.id) - job.release);
      g_wait /= static_cast<double>(k);
      trap.add(k, lb, name, metrics.makespan,
               format_double(static_cast<double>(metrics.makespan) /
                                 static_cast<double>(lb),
                             3),
               format_double(metrics.mean_wait, 1),
               format_double(g_wait, 1));
    }
  }
  benchutil::print_table(trap);

  benchutil::print_header(
      "Online doubling batches (section 2.1, Shmoys-Wein-Williamson)",
      "Poisson arrivals; online-batch(base) makespan vs the certified "
      "offline LB.\nGuarantee: <= 2 rho LB with rho = 2 - 1/m.");
  Table online({"seed", "base", "batches", "C_online", "LB",
                "ratio", "2*rho cap"});
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config;
    config.n = 60;
    config.m = 16;
    config.mean_interarrival = 4.0;
    const Instance instance = random_workload(config, seed * 1111);
    const Time lb = makespan_lower_bound(instance);
    for (const char* base : {"lsrc", "conservative"}) {
      OnlineBatchScheduler scheduler(make_scheduler(base));
      std::vector<BatchInfo> batches;
      const Schedule schedule =
          scheduler.schedule_with_batches(instance, batches).value();
      const double cap =
          2.0 * (2.0 - 1.0 / static_cast<double>(instance.m()));
      online.add(seed, base, batches.size(), schedule.makespan(instance), lb,
                 format_double(static_cast<double>(
                                   schedule.makespan(instance)) /
                                   static_cast<double>(lb),
                               3),
                 format_double(cap, 3));
    }
  }
  benchutil::print_table(online);
}

void BM_SchedulerOnTrap(benchmark::State& state) {
  const Instance instance = cbf_trap_instance(state.range(0), 16, 50);
  const auto scheduler = make_scheduler("easy");
  for (auto _ : state) {
    const Schedule schedule = scheduler->schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
}
BENCHMARK(BM_SchedulerOnTrap)->Arg(8)->Arg(32)->Arg(128);

void BM_OnlineBatchWrapper(benchmark::State& state) {
  WorkloadConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.m = 16;
  config.mean_interarrival = 3.0;
  const Instance instance = random_workload(config, 2222);
  for (auto _ : state) {
    OnlineBatchScheduler scheduler(make_scheduler("lsrc"));
    const Schedule schedule = scheduler.schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
}
BENCHMARK(BM_OnlineBatchWrapper)->Arg(50)->Arg(200);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_online.json")
