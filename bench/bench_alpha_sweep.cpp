// Experiment E7 -- empirical companion to Proposition 3.
//
// Random alpha-restricted workloads across the alpha axis: measured ratios
// (vs the certified lower bound) for every scheduler, against the analytic
// worst-case envelope 2/alpha. Average-case ratios sit far below the
// envelope, but degrade as alpha shrinks -- same direction as the theory.
#include "bench_util.hpp"

#include <vector>

#include "algorithms/scheduler.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace resched;

Instance alpha_instance(std::uint64_t seed, const Rational& alpha) {
  WorkloadConfig config;
  config.n = 80;
  config.m = 32;
  config.alpha = alpha;
  config.p_max = 40;
  const Instance base = random_workload(config, seed);
  AlphaReservationConfig resa;
  resa.alpha = alpha;
  resa.count = 6;
  resa.horizon = 150;
  resa.max_duration = 40;
  return with_alpha_restricted_reservations(base, resa, seed + 5000);
}

void print_tables() {
  benchutil::print_header(
      "Alpha sweep (empirical companion to Prop. 3)",
      "Mean / max makespan ratio vs certified lower bound over 10 seeds per "
      "alpha.\nThe 2/alpha column is the worst-case envelope; averages sit "
      "well below it.");

  const std::vector<std::pair<int, int>> alphas{
      {1, 8}, {1, 4}, {1, 3}, {1, 2}, {2, 3}, {3, 4}, {1, 1}};
  const std::vector<std::string> algorithms{"lsrc", "lsrc-lpt", "fcfs",
                                            "conservative", "easy"};

  for (const auto& name : algorithms) {
    Table table({"alpha", "mean ratio", "max ratio", "envelope 2/alpha"});
    for (const auto& [num, den] : alphas) {
      const Rational alpha(num, den);
      OnlineStats stats;
      // Seeds are independent: fan the cell out across cores when OpenMP is
      // enabled (results are merged deterministically -- OnlineStats::merge
      // is exact up to floating-point commutativity of the pooled moments).
#ifdef _OPENMP
#pragma omp parallel
      {
        OnlineStats local;
#pragma omp for nowait
        for (int seed = 1; seed <= 10; ++seed) {
          const Instance instance =
              alpha_instance(static_cast<std::uint64_t>(seed) * 37, alpha);
          const Schedule schedule = make_scheduler(name)->schedule(instance).value();
          const Time lb = makespan_lower_bound(instance);
          local.add(static_cast<double>(schedule.makespan(instance)) /
                    static_cast<double>(lb));
        }
#pragma omp critical
        stats.merge(local);
      }
#else
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Instance instance = alpha_instance(seed * 37, alpha);
        const Schedule schedule = make_scheduler(name)->schedule(instance).value();
        const Time lb = makespan_lower_bound(instance);
        stats.add(static_cast<double>(schedule.makespan(instance)) /
                  static_cast<double>(lb));
      }
#endif
      table.add(format_double(alpha.to_double(), 3),
                format_double(stats.mean(), 4),
                format_double(stats.max(), 4),
                format_double(alpha_upper_bound(alpha).to_double(), 3));
    }
    std::cout << "-- " << name << "\n";
    benchutil::print_table(table);
  }
}

void BM_AlphaSweepCell(benchmark::State& state) {
  const Rational alpha(1, state.range(0));
  const Instance instance = alpha_instance(99, alpha);
  const auto scheduler = make_scheduler("lsrc");
  for (auto _ : state) {
    const Schedule schedule = scheduler->schedule(instance).value();
    benchmark::DoNotOptimize(schedule.makespan(instance));
  }
}
BENCHMARK(BM_AlphaSweepCell)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_alpha_sweep.json")
