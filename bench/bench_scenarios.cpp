// Scenario subsystem costs: program compilation, skyline decomposition,
// tolerant SWF parsing, the scenario x scheduler survival matrix, and a
// resident-service step running under a scenario's availability windows.
//
// The table section prints the stock survival matrix (the qualitative
// verdict grid EXPERIMENTS.md quotes); the timing section exports cell
// counts, verdict tallies and parse/skip counters so BENCH_scenarios.json
// tracks both the subsystem's speed and its deterministic aggregates
// across PRs.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "algorithms/scheduler.hpp"
#include "bench_util.hpp"
#include "scenario/matrix.hpp"
#include "scenario/scn_format.hpp"
#include "scenario/swf_reader.hpp"

namespace {

using namespace resched;

constexpr std::uint64_t kSeed = 42;

void print_tables() {
  benchutil::print_header(
      "Scenario survival matrix",
      "Six stock availability/workload scenarios x the scheduler registry "
      "(m = 32, 4 instances per cell, seed 42): held / VIOLATED / "
      "out-of-domain / inconclusive per cell.");
  ScenarioMatrixConfig config;
  config.instances = 4;
  config.seed = kSeed;
  const ScenarioMatrixResult result =
      run_scenario_matrix(stock_scenarios(32), config);
  benchutil::print_table(result.survival_table());
}

// Compile one stock program and decompose its curve into reservations --
// the per-scenario setup cost the matrix pays once per row.
void BM_CompileScenario(benchmark::State& state, const char* which) {
  const ProcCount m = 32;
  ScenarioProgram program;
  std::optional<ScenarioProgram> reference;
  if (std::string(which) == "daily_intensity") {
    program = daily_intensity_program(1440);
  } else if (std::string(which) == "brownout") {
    program = brownout_program(m);
    reference = daily_intensity_program(1440);
  } else {
    program = flash_crowd_program(m);
  }
  std::optional<CompiledScenario> compiled_reference;
  if (reference.has_value())
    compiled_reference = compile_scenario(*reference);
  CompiledScenario compiled;
  std::size_t reservations = 0;
  for (auto _ : state) {
    compiled = compile_scenario(program, compiled_reference.has_value()
                                             ? &compiled_reference->curve
                                             : nullptr);
    if (compiled.curve.max_value() <= m)
      reservations =
          unavailability_to_reservations(scenario_unavailability(compiled, m))
              .size();
    benchmark::DoNotOptimize(compiled.horizon);
  }
  state.counters["segments"] =
      static_cast<double>(compiled.curve.segments().size());
  state.counters["reservations"] = static_cast<double>(reservations);
}

// Round-trip the committed grammar: serialize + reparse one stock program.
void BM_ScnRoundTrip(benchmark::State& state) {
  const ScenarioProgram program = daily_intensity_program(1440);
  ScenarioProgram reparsed;
  for (auto _ : state) {
    reparsed = parse_scn(serialize_scn(program));
    benchmark::DoNotOptimize(reparsed.steps.size());
  }
  state.counters["steps"] = static_cast<double>(reparsed.steps.size());
}

// Tolerant SWF parse over a synthesized in-memory trace: 2000 records, a
// deterministic sprinkle of every skip reason plus clamped fields.
void BM_SwfParse(benchmark::State& state) {
  std::ostringstream trace;
  trace << "; MaxProcs: 64\n; MaxRuntime: 100000\n";
  for (int i = 1; i <= 2000; ++i) {
    if (i % 97 == 0) {
      trace << i << " 10 0 5\n";  // truncated: 4 fields
    } else if (i % 89 == 0) {
      trace << i << " 10 0 xx 4 -1 -1 -1 -1 -1 0 1 -1 -1 -1 -1 -1 -1\n";
    } else {
      // status 5 every 101st record (cancelled), procs 80 every 53rd
      // (clamped to MaxProcs), otherwise a clean record.
      const int procs = i % 53 == 0 ? 80 : 1 + i % 8;
      const int status = i % 101 == 0 ? 5 : 1;
      trace << i << ' ' << i % 500 << " 0 " << 1 + i % 120 << ' ' << procs
            << " -1 -1 -1 -1 -1 " << status << " 1 -1 -1 -1 -1 -1 -1\n";
    }
  }
  const std::string text = trace.str();
  SwfTrace parsed;
  for (auto _ : state) {
    parsed = parse_swf_trace(text);
    benchmark::DoNotOptimize(parsed.jobs.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["parsed"] = static_cast<double>(parsed.parsed);
  state.counters["skipped"] = static_cast<double>(parsed.skipped);
  state.counters["clamped_procs"] = static_cast<double>(parsed.clamped_procs);
}

// A 2 x 2 corner of the matrix with single-threaded campaigns: the
// held / VIOLATED contrast (soak's blocking workload defeats fcfs) at a
// size CI can afford per run.
void BM_ScenarioMatrix(benchmark::State& state) {
  std::vector<ScenarioSpec> specs;
  for (ScenarioSpec& spec : stock_scenarios(16))
    if (spec.program.name == "soak" || spec.program.name == "ramp")
      specs.push_back(std::move(spec));
  ScenarioMatrixConfig config;
  config.instances = 2;
  config.seed = kSeed;
  config.threads = 1;
  config.schedulers = {"fcfs", "lsrc"};
  ScenarioMatrixResult result;
  for (auto _ : state) {
    result = run_scenario_matrix(specs, config);
    benchmark::DoNotOptimize(result.cells.size());
  }
  double violated = 0, out_of_domain = 0, held = 0;
  for (const ScenarioCell& cell : result.cells) {
    if (cell.verdict == CellVerdict::kViolated) ++violated;
    if (cell.verdict == CellVerdict::kOutOfDomain) ++out_of_domain;
    if (cell.verdict == CellVerdict::kHeld) ++held;
  }
  state.counters["cells"] = static_cast<double>(result.cells.size());
  state.counters["held"] = held;
  state.counters["violated"] = violated;
  state.counters["out_of_domain"] = out_of_domain;
}

// One resident-service step with the maintenance program's unavailability
// rectangles installed as availability windows.
void BM_ScenarioServiceStep(benchmark::State& state) {
  const auto scheduler = make_scheduler("easy");
  LoadGenConfig load;
  load.m = 32;
  load.p_min = 1;
  load.p_max = 30;
  load.alpha = Rational(1, 2);
  ServiceConfig config;
  config.phases = ServicePhases{50, 250, 50};
  config.dispatch_window = 64;
  config.bail_queue_depth = 2000;
  ServiceStepResult last;
  for (auto _ : state) {
    last = run_scenario_service_step(*scheduler, maintenance_program(32),
                                     std::nullopt, load, kSeed, 200.0, config);
    benchmark::DoNotOptimize(last.completed);
  }
  state.counters["scenario_windows"] =
      static_cast<double>(last.scenario_windows);
  state.counters["completed"] = static_cast<double>(last.completed);
  state.counters["saturated"] = last.saturated ? 1.0 : 0.0;
}

BENCHMARK_CAPTURE(BM_CompileScenario, daily_intensity, "daily_intensity")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompileScenario, flash_crowd, "flash_crowd")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompileScenario, brownout, "brownout")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScnRoundTrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SwfParse)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScenarioMatrix)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScenarioServiceStep)->Unit(benchmark::kMillisecond);

}  // namespace

RESCHED_BENCH_MAIN(print_tables, "BENCH_scenarios.json")
